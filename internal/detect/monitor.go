package detect

import (
	"math"
	"sync"
	"time"
)

// Monitor is a phi-accrual liveness monitor for one peer (Hayashibara et
// al.'s accrual detector, exponential-arrival form). Every observed message
// from the peer — explicit heartbeat or piggybacked traffic — records an
// arrival; Phi converts the silence since the last arrival into a suspicion
// level that grows continuously instead of a binary timeout: assuming
// inter-arrival times are exponential with the observed mean m,
//
//	phi(t) = -log10 P(silence > t) = t / (m · ln 10)
//
// so phi = 3 means "this silence had probability 10^-3 if the peer were
// alive". The mean is estimated over a sliding window with the configured
// heartbeat interval as a floor, which keeps a burst of piggybacked traffic
// (many near-zero gaps) from collapsing the mean and turning ordinary
// scheduling delay into suspicion — the false-suspicion hazard the delay
// scenarios exercise.
type Monitor struct {
	interval time.Duration // heartbeat period: floor for the estimated mean

	mu     sync.Mutex
	last   time.Time
	window []time.Duration // ring buffer of recent inter-arrival gaps
	idx    int
	filled int
}

// monitorWindow is the sliding-window length for the mean estimate.
const monitorWindow = 32

// newMonitor creates a monitor whose silence clock starts at now (creation
// counts as an arrival, so a freshly booted or rejoined peer gets one full
// accrual period of grace before suspicion can accumulate).
func newMonitor(interval time.Duration, now time.Time) *Monitor {
	return &Monitor{
		interval: interval,
		last:     now,
		window:   make([]time.Duration, monitorWindow),
	}
}

// Observe records an arrival from the peer at time now.
func (m *Monitor) Observe(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if gap := now.Sub(m.last); gap > 0 {
		m.window[m.idx] = gap
		m.idx = (m.idx + 1) % len(m.window)
		if m.filled < len(m.window) {
			m.filled++
		}
	}
	if now.After(m.last) {
		m.last = now
	}
}

// Reset restarts the monitor's history and silence clock (a peer rejoining
// after a respawn must not inherit its dead incarnation's gaps).
func (m *Monitor) Reset(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.last = now
	m.idx, m.filled = 0, 0
}

// mean returns the estimated inter-arrival mean, floored at the heartbeat
// interval. Callers hold m.mu.
func (m *Monitor) mean() time.Duration {
	if m.filled == 0 {
		return m.interval
	}
	var sum time.Duration
	for i := 0; i < m.filled; i++ {
		sum += m.window[i]
	}
	avg := sum / time.Duration(m.filled)
	if avg < m.interval {
		return m.interval
	}
	return avg
}

// Phi returns the accrued suspicion level at time now.
func (m *Monitor) Phi(now time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	elapsed := now.Sub(m.last)
	if elapsed <= 0 {
		return 0
	}
	return float64(elapsed) / (float64(m.mean()) * math.Ln10)
}

// Silence returns the time since the last arrival.
func (m *Monitor) Silence(now time.Time) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return now.Sub(m.last)
}
