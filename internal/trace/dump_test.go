package trace

import (
	"encoding/binary"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Seq: 0, Span: 0x100000001, Parent: 0, Kind: KindCommit, Phase: PhaseBegin, Rank: 2, Peer: -1, Clock: 1, Time: 10, Arg: 5},
		{Seq: 1, Span: 0x100000002, Parent: 0x100000001, Kind: KindSend, Phase: PhaseSend, Rank: 2, Peer: 3, Clock: 2, Time: 20, Arg: 64},
		{Seq: 2, Span: 0x100000001, Parent: 0, Kind: KindCommit, Phase: PhaseEnd, Rank: 2, Peer: -1, Clock: 3, Time: 30, Arg: 5},
	}
}

func TestDumpRoundTrip(t *testing.T) {
	events := sampleEvents()
	data := EncodeDump(2, events)
	d, err := DecodeDump(data)
	if err != nil {
		t.Fatalf("DecodeDump: %v", err)
	}
	if d.Rank != 2 {
		t.Fatalf("rank = %d, want 2", d.Rank)
	}
	if len(d.Events) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(d.Events), len(events))
	}
	for i := range events {
		if d.Events[i] != events[i] {
			t.Fatalf("event %d mangled:\n got %+v\nwant %+v", i, d.Events[i], events[i])
		}
	}
}

func TestDecodeDumpRejectsHostileInput(t *testing.T) {
	good := EncodeDump(0, sampleEvents())

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := append([]byte(nil), good...)
		b = mutate(b)
		if _, err := DecodeDump(b); err == nil {
			t.Errorf("%s: DecodeDump accepted corrupted input", name)
		}
	}

	corrupt("bad magic", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[0:], 0xdeadbeef)
		return b
	})
	corrupt("bad version", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[4:], DumpVersion+1)
		return b
	})
	corrupt("truncated header", func(b []byte) []byte { return b[:8] })
	corrupt("truncated events", func(b []byte) []byte { return b[:len(b)-1] })
	corrupt("hostile count", func(b []byte) []byte {
		// Count field claims 2^31 events on a tiny payload: the Count
		// clamp must reject it rather than allocate.
		binary.LittleEndian.PutUint32(b[16:], 1<<31-1)
		return b
	})
	corrupt("invalid kind", func(b []byte) []byte {
		// First event's kind byte sits right after the 3 u64 ids.
		b[20+24] = byte(KindCount)
		return b
	})
	corrupt("invalid phase", func(b []byte) []byte {
		b[20+25] = byte(PhaseRecv) + 1
		return b
	})
	corrupt("trailing garbage", func(b []byte) []byte {
		return append(b, 0xff)
	})

	if _, err := DecodeDump(nil); err == nil {
		t.Error("DecodeDump(nil) must fail")
	}
}

func TestDumpEmpty(t *testing.T) {
	d, err := DecodeDump(EncodeDump(7, nil))
	if err != nil {
		t.Fatalf("DecodeDump(empty): %v", err)
	}
	if d.Rank != 7 || len(d.Events) != 0 {
		t.Fatalf("empty dump round trip: rank %d, %d events", d.Rank, len(d.Events))
	}
}
