// Package unit implements the `go vet -vettool` separate-compilation
// protocol for c3lint, compatible with the x/tools unitchecker contract
// that cmd/go speaks:
//
//	c3lint -V=full       print a version line for build caching
//	c3lint -flags        describe tool flags as JSON
//	c3lint foo.cfg       analyze one compilation unit described by foo.cfg
//
// The .cfg file is JSON: package files, an import map, and paths to the
// export data (.a) files the compiler already produced for every
// dependency — so this mode type-checks one package against gc export data
// instead of re-checking the world from source. Facts are not used by any
// c3 analyzer; the fact-output file required by the protocol is written
// empty, and VetxOnly invocations (dependency packages visited purely for
// facts) return immediately.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"c3/internal/lint/analysis"
	"c3/internal/lint/driver"
)

// Config mirrors the JSON schema of the cmd/go vet config file (the field
// set is the x/tools unitchecker.Config wire contract).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Maybe handles the vettool protocol arguments if present, returning true
// when it consumed the invocation (and has exited or is done).
func Maybe(args []string, analyzers []*analysis.Analyzer) bool {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			os.Exit(0)
		case a == "-flags" || a == "--flags":
			// No tool-specific flags; an empty JSON list tells cmd/go so.
			fmt.Println("[]")
			os.Exit(0)
		}
	}
	if len(args) == 1 && len(args[0]) > 4 && args[0][len(args[0])-4:] == ".cfg" {
		os.Exit(Run(args[0], analyzers))
	}
	return false
}

// printVersion emits the build-cache identity line cmd/go parses: the
// binary's content hash makes edits to the tool invalidate vet's cache.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			_ = f.Close()
		}
	}
	fmt.Printf("c3lint version c3-%x\n", h.Sum(nil)[:12])
}

// Run analyzes the single compilation unit described by cfgFile and
// returns the process exit code (0 clean, 1 findings, 2 operational error).
func Run(cfgFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3lint: %v\n", err)
		return 2
	}
	// The protocol requires the fact-output file to exist afterwards even
	// though c3 analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "c3lint: writing vetx output: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency visited for facts only; nothing to do
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "c3lint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "c3lint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	res := driver.RunChecked(fset, files, pkg, info, analyzers)
	for _, err := range res.Errors {
		fmt.Fprintf(os.Stderr, "c3lint: %v\n", err)
	}
	for _, f := range res.Findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(res.Errors) > 0 {
		return 2
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
