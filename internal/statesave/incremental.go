package statesave

import (
	"fmt"
	"hash/fnv"

	"c3/internal/wire"
)

// Incremental checkpointing support (the paper's Section 5 future work:
// "We are incorporating incremental checkpointing into our system, which
// will permit the system to save only those data that have been modified
// since the last checkpoint").
//
// The unit of change detection is the registered section: a section image
// is stored in a checkpoint only if its content differs from the previous
// checkpoint's, identified by an FNV-64a digest. A full snapshot anchors
// each chain; recovery loads the anchor and applies forward deltas.

// SectionImage is one section's serialized body plus its digest.
type SectionImage struct {
	Body   []byte
	Digest uint64
}

// Sections serializes every registered section individually, keyed by name.
func (g *Registry) Sections() map[string]SectionImage {
	out := make(map[string]SectionImage, len(g.sections))
	for _, s := range g.sections {
		w := wire.NewWriter(64 + s.LiveBytes())
		s.Save(w)
		h := fnv.New64a()
		h.Write(w.Bytes())
		out[s.Name()] = SectionImage{Body: w.Bytes(), Digest: h.Sum64()}
	}
	return out
}

// LoadSectionBodies restores sections from name-keyed bodies.
func (g *Registry) LoadSectionBodies(bodies map[string][]byte) error {
	for name, body := range bodies {
		s, ok := g.byName[name]
		if !ok {
			return fmt.Errorf("statesave: image has unregistered section %q", name)
		}
		if err := s.Load(wire.NewReader(body)); err != nil {
			return fmt.Errorf("statesave: section %q: %w", name, err)
		}
	}
	return nil
}

// DiffSections returns the sections of cur whose digests differ from prev
// (plus sections absent from prev).
func DiffSections(prev, cur map[string]SectionImage) map[string]SectionImage {
	delta := make(map[string]SectionImage)
	for name, img := range cur {
		if p, ok := prev[name]; !ok || p.Digest != img.Digest {
			delta[name] = img
		}
	}
	return delta
}

// EncodeIncrement serializes a (possibly partial) section set with its kind
// and base-line reference.
func EncodeIncrement(full bool, baseLine uint64, sections map[string]SectionImage) []byte {
	w := wire.NewWriter(256)
	w.Bool(full)
	w.U64(baseLine)
	w.U32(uint32(len(sections)))
	// Deterministic order for reproducible checkpoints.
	names := make([]string, 0, len(sections))
	for n := range sections {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, n := range names {
		w.String(n)
		w.U64(sections[n].Digest)
		w.Bytes32(sections[n].Body)
	}
	return w.Bytes()
}

// DecodeIncrement parses an EncodeIncrement image.
func DecodeIncrement(data []byte) (full bool, baseLine uint64, sections map[string]SectionImage, err error) {
	r := wire.NewReader(data)
	full = r.Bool()
	baseLine = r.U64()
	n := r.Count(16) // minimum bytes per serialized section
	sections = make(map[string]SectionImage, n)
	for i := 0; i < n; i++ {
		name := r.String()
		digest := r.U64()
		body := r.Bytes32()
		if r.Err() != nil {
			return false, 0, nil, fmt.Errorf("statesave: corrupt incremental image: %w", r.Err())
		}
		sections[name] = SectionImage{Body: body, Digest: digest}
	}
	return full, baseLine, sections, r.Err()
}

// MergeSections overlays delta onto base, returning a new map.
func MergeSections(base, delta map[string]SectionImage) map[string]SectionImage {
	out := make(map[string]SectionImage, len(base)+len(delta))
	for n, img := range base {
		out[n] = img
	}
	for n, img := range delta {
		out[n] = img
	}
	return out
}

// TotalBytes sums section body sizes.
func TotalBytes(sections map[string]SectionImage) int {
	t := 0
	for _, img := range sections {
		t += len(img.Body)
	}
	return t
}
