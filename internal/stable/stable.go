// Package stable implements the stable-storage abstraction the checkpoint
// protocol writes recovery lines to.
//
// A checkpoint for (rank, version) is a set of named sections written in two
// phases, mirroring the protocol: the application state, MPI state and
// Early-Message-Registry are written when the checkpoint starts
// (chkpt_StartCheckpoint), and the Late-Message-Registry plus request table
// are appended when all late messages are in (chkpt_CommitCheckpoint).
// Commit is atomic: a checkpoint that was not committed is invisible to
// recovery.
//
// Three implementations are provided, matching the paper's experimental
// configurations (Section 6.4):
//
//   - DiskStore writes sections to per-rank, per-version directories with a
//     rename-committed marker (Configuration #3, "saving application state
//     to the local disk on each node");
//   - MemStore keeps everything in memory (used by tests and by recovery
//     experiments that should not touch the filesystem);
//   - NullStore goes through all encoding work but discards the bytes
//     (Configuration #2, "without saving any checkpoint data to disk").
package stable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned when the requested checkpoint or section is absent.
var ErrNotFound = errors.New("stable: not found")

// ErrNotCommitted is returned when opening a version that was never
// committed.
var ErrNotCommitted = errors.New("stable: version not committed")

// ErrFenced is returned by a fenced DistStore commit: the local rank has
// lost contact with a strict majority of the world (it sits on the
// minority side of a partition), so committing a checkpoint could create
// a recovery line diverging from one the majority commits without it.
// The commit is refused outright — no local copy, no excusal of silent
// neighbors — until the partition heals and the fence lifts.
var ErrFenced = errors.New("stable: fenced (no majority contact)")

// Store is per-node stable storage for checkpoints. Implementations must be
// safe for concurrent use by different ranks; a single (rank, version)
// checkpoint is only ever touched by its own rank.
type Store interface {
	// Begin opens a new checkpoint for (rank, version). Any uncommitted
	// data for the same pair is discarded.
	Begin(rank, version int) (Checkpoint, error)
	// LastCommitted returns the highest committed version for the rank;
	// ok is false if none exists.
	LastCommitted(rank int) (version int, ok bool, err error)
	// Open returns a committed checkpoint for reading.
	Open(rank, version int) (Snapshot, error)
	// Retire discards committed checkpoints older than version for the
	// rank (garbage collection after a newer global line commits).
	Retire(rank, version int) error
	// Truncate discards committed checkpoints NEWER than version for the
	// rank. Recovery calls it after the world agrees on a recovery line:
	// versions above the line belong to the execution generation that just
	// died and will be re-written by the re-execution. Leaving them in
	// place is unsound — a rank that failed with lines still in its async
	// commit pipeline keeps an older generation's checkpoint at the same
	// version number, and a later recovery would assemble a "global" line
	// from mutually inconsistent generations (the mixed-generation stall
	// the schedule explorer pinned down).
	Truncate(rank, version int) error
}

// StoredSizer is implemented by checkpoint handles whose Commit can report
// how many stable-storage bytes the checkpoint occupies across the world —
// local copy plus replica shards and parity. The ckpt layer exposes the
// total as Stats.StoredBytes, making the codec's storage-overhead ratio
// (StoredBytes / CheckpointBytes) observable per rank.
type StoredSizer interface {
	StoredSize() int64
}

// NodeFailer is implemented by stores that co-locate checkpoint data with
// compute nodes (ReplicatedStore). The runtime calls FailNode when it
// injects a fail-stop failure, so the store loses everything held in the
// failed node's memory — local checkpoints and replica fragments alike —
// and recovery must reassemble the rank's lines from surviving peers.
type NodeFailer interface {
	FailNode(rank int)
}

// Checkpoint is an open, uncommitted checkpoint being written.
type Checkpoint interface {
	// WriteSection stores a named section. Writing a section twice
	// replaces it.
	WriteSection(name string, data []byte) error
	// Commit makes the checkpoint durable and visible to recovery.
	Commit() error
	// Abort discards the checkpoint.
	Abort() error
}

// Snapshot is a committed checkpoint being read.
type Snapshot interface {
	// ReadSection returns a section's contents.
	ReadSection(name string) ([]byte, error)
	// Sections lists the section names, sorted.
	Sections() ([]string, error)
	// Close releases resources.
	Close() error
}

// GlobalLine computes the most recent recovery line committed on all nodes:
// the minimum over ranks of each rank's last committed version, provided
// every rank has one. This mirrors the "global reduction to find the last
// checkpoint committed on all nodes" in chkpt_RestoreCheckpoint; the
// protocol layer performs the reduction over MPI, and uses this helper for
// the local reduction step.
func GlobalLine(lasts []int, oks []bool) (int, bool) {
	line := int(^uint(0) >> 1)
	for i := range lasts {
		if !oks[i] {
			return 0, false
		}
		if lasts[i] < line {
			line = lasts[i]
		}
	}
	return line, len(lasts) > 0
}

// --- In-memory store ---

type memCkpt struct {
	sections map[string][]byte
	commit   bool
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu    sync.Mutex
	byKey map[[2]int]*memCkpt
	// Bytes written accounting, for checkpoint-size experiments.
	bytesWritten int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{byKey: make(map[[2]int]*memCkpt)}
}

// BytesWritten returns the total section bytes written so far.
func (s *MemStore) BytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesWritten
}

type memHandle struct {
	store *MemStore
	key   [2]int
	ck    *memCkpt
}

// Begin implements Store.
func (s *MemStore) Begin(rank, version int) (Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := [2]int{rank, version}
	ck := &memCkpt{sections: make(map[string][]byte)}
	s.byKey[key] = ck
	return &memHandle{store: s, key: key, ck: ck}, nil
}

func (h *memHandle) WriteSection(name string, data []byte) error {
	h.store.mu.Lock()
	defer h.store.mu.Unlock()
	if h.ck.commit {
		return fmt.Errorf("stable: write to committed checkpoint %v", h.key)
	}
	h.ck.sections[name] = append([]byte(nil), data...)
	h.store.bytesWritten += int64(len(data))
	return nil
}

func (h *memHandle) Commit() error {
	h.store.mu.Lock()
	defer h.store.mu.Unlock()
	h.ck.commit = true
	return nil
}

func (h *memHandle) Abort() error {
	h.store.mu.Lock()
	defer h.store.mu.Unlock()
	delete(h.store.byKey, h.key)
	return nil
}

// LastCommitted implements Store.
func (s *MemStore) LastCommitted(rank int) (int, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	best, ok := 0, false
	for key, ck := range s.byKey {
		if key[0] == rank && ck.commit && (!ok || key[1] > best) {
			best, ok = key[1], true
		}
	}
	return best, ok, nil
}

// Open implements Store.
func (s *MemStore) Open(rank, version int) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck, ok := s.byKey[[2]int{rank, version}]
	if !ok {
		return nil, fmt.Errorf("%w: rank %d version %d", ErrNotFound, rank, version)
	}
	if !ck.commit {
		return nil, fmt.Errorf("%w: rank %d version %d", ErrNotCommitted, rank, version)
	}
	return &memSnap{ck: ck}, nil
}

// Retire implements Store.
func (s *MemStore) Retire(rank, version int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key := range s.byKey {
		if key[0] == rank && key[1] < version {
			delete(s.byKey, key)
		}
	}
	return nil
}

// Truncate implements Store.
func (s *MemStore) Truncate(rank, version int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key := range s.byKey {
		if key[0] == rank && key[1] > version {
			delete(s.byKey, key)
		}
	}
	return nil
}

type memSnap struct{ ck *memCkpt }

func (m *memSnap) ReadSection(name string) ([]byte, error) {
	data, ok := m.ck.sections[name]
	if !ok {
		return nil, fmt.Errorf("%w: section %q", ErrNotFound, name)
	}
	return append([]byte(nil), data...), nil
}

func (m *memSnap) Sections() ([]string, error) {
	names := make([]string, 0, len(m.ck.sections))
	for n := range m.ck.sections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (m *memSnap) Close() error { return nil }

// --- Null store (Configuration #2) ---

// NullStore discards all data but counts bytes, so the full encoding cost is
// paid without any storage cost.
type NullStore struct {
	mu           sync.Mutex
	bytesWritten int64
	committed    map[[2]int]bool
}

// NewNullStore returns a NullStore.
func NewNullStore() *NullStore {
	return &NullStore{committed: make(map[[2]int]bool)}
}

// BytesWritten returns the total bytes that were encoded and discarded.
func (s *NullStore) BytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesWritten
}

type nullHandle struct {
	store *NullStore
	key   [2]int
}

// Begin implements Store.
func (s *NullStore) Begin(rank, version int) (Checkpoint, error) {
	return &nullHandle{store: s, key: [2]int{rank, version}}, nil
}

func (h *nullHandle) WriteSection(name string, data []byte) error {
	h.store.mu.Lock()
	h.store.bytesWritten += int64(len(data))
	h.store.mu.Unlock()
	return nil
}

func (h *nullHandle) Commit() error {
	h.store.mu.Lock()
	h.store.committed[h.key] = true
	h.store.mu.Unlock()
	return nil
}

func (h *nullHandle) Abort() error { return nil }

// LastCommitted implements Store. A NullStore never admits to having a
// checkpoint — it cannot be restored from.
func (s *NullStore) LastCommitted(rank int) (int, bool, error) { return 0, false, nil }

// Open implements Store.
func (s *NullStore) Open(rank, version int) (Snapshot, error) {
	return nil, fmt.Errorf("%w: null store holds no data", ErrNotFound)
}

// Retire implements Store.
func (s *NullStore) Retire(rank, version int) error { return nil }

// Truncate implements Store.
func (s *NullStore) Truncate(rank, version int) error { return nil }

// --- Disk store (Configuration #3) ---

// DiskStore writes checkpoints under root/rank<r>/v<version>/, one file per
// section, with a "COMMITTED" marker file created by atomic rename. The
// marker's contents are a structured CommitMeta record (codec geometry,
// membership epoch, per-section digests — see marker.go); its presence
// alone is what marks the version committed.
type DiskStore struct {
	root string

	metaMu       sync.Mutex
	epoch        uint64
	codec        uint8
	data, parity int
}

// NewDiskStore creates (if needed) and opens a store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stable: create root: %w", err)
	}
	return &DiskStore{root: dir}, nil
}

func (s *DiskStore) dir(rank, version int) string {
	return filepath.Join(s.root, fmt.Sprintf("rank%04d", rank), fmt.Sprintf("v%08d", version))
}

type diskHandle struct {
	store    *DiskStore
	rank     int
	ver      int
	dir      string
	sections []SectionMeta
}

// Begin implements Store.
func (s *DiskStore) Begin(rank, version int) (Checkpoint, error) {
	dir := s.dir(rank, version)
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("stable: clear stale checkpoint: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stable: create checkpoint dir: %w", err)
	}
	return &diskHandle{store: s, rank: rank, ver: version, dir: dir}, nil
}

func sectionFile(name string) string {
	// Section names are protocol-chosen identifiers; keep them path-safe.
	return "s_" + strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name) + ".bin"
}

// diskCrashpoint, when non-nil, is consulted before each commit stage; a
// true return simulates the process dying at that point (the torn-commit
// test). Stages, in order: "marker-write", "marker-rename", "dir-sync".
var diskCrashpoint func(stage string) bool

// errSimulatedCrash marks a crashpoint-triggered abort in tests.
var errSimulatedCrash = errors.New("stable: simulated crash")

// writeFileSync writes data to path and fsyncs it, so the contents are
// durable before any rename that makes them visible.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // the write error is the one to report
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the sync error is the one to report
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory, making its entries (renames, creations)
// durable. Required on POSIX systems: renaming the commit marker is atomic
// in the namespace but not durable until the directory itself is synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (h *diskHandle) WriteSection(name string, data []byte) error {
	path := filepath.Join(h.dir, sectionFile(name))
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("stable: write section %q: %w", name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("stable: commit section %q: %w", name, err)
	}
	meta := SectionMeta{Name: name, Bytes: len(data), Sum: replSum(data)}
	for i, s := range h.sections {
		if s.Name == name { // re-written section: replace its record
			h.sections[i] = meta
			return nil
		}
	}
	h.sections = append(h.sections, meta)
	return nil
}

// Commit makes the checkpoint durable against real process or machine
// death, in write-ahead order: (1) the directory is synced so every
// section file's rename is durable, (2) the marker's contents are written
// and synced, (3) the marker is renamed into place, (4) the directory is
// synced again so the rename itself is durable. A crash between any two
// steps leaves either no marker (the version is invisible and recovery
// uses the previous line) or a complete marker over fully durable
// sections — never a marker naming partial data.
func (h *diskHandle) Commit() error {
	if err := syncDir(h.dir); err != nil {
		return fmt.Errorf("stable: sync checkpoint dir: %w", err)
	}
	if diskCrashpoint != nil && diskCrashpoint("marker-write") {
		return errSimulatedCrash
	}
	meta := h.store.markerMeta()
	meta.Sections = h.sections
	tmp := filepath.Join(h.dir, ".committing")
	if err := writeFileSync(tmp, encodeCommitMeta(meta)); err != nil {
		return fmt.Errorf("stable: write commit marker: %w", err)
	}
	if diskCrashpoint != nil && diskCrashpoint("marker-rename") {
		return errSimulatedCrash
	}
	if err := os.Rename(tmp, filepath.Join(h.dir, "COMMITTED")); err != nil {
		return fmt.Errorf("stable: commit: %w", err)
	}
	if diskCrashpoint != nil && diskCrashpoint("dir-sync") {
		return errSimulatedCrash
	}
	if err := syncDir(h.dir); err != nil {
		return fmt.Errorf("stable: sync commit marker: %w", err)
	}
	// The version directory's own entry (created by Begin) lives in the
	// rank directory, and the rank directory's entry in the store root;
	// without syncing those too, a machine crash after Commit returns could
	// leave the freshly committed version's directory missing entirely —
	// while the protocol has already retired the older lines it replaced.
	if err := syncDir(filepath.Dir(h.dir)); err != nil {
		return fmt.Errorf("stable: sync rank dir: %w", err)
	}
	if err := syncDir(h.store.root); err != nil {
		return fmt.Errorf("stable: sync store root: %w", err)
	}
	return nil
}

func (h *diskHandle) Abort() error {
	return os.RemoveAll(h.dir)
}

// LastCommitted implements Store.
func (s *DiskStore) LastCommitted(rank int) (int, bool, error) {
	rankDir := filepath.Join(s.root, fmt.Sprintf("rank%04d", rank))
	entries, err := os.ReadDir(rankDir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("stable: list versions: %w", err)
	}
	best, ok := 0, false
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "v") {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(e.Name(), "v%d", &v); err != nil {
			continue
		}
		if _, err := os.Stat(filepath.Join(rankDir, e.Name(), "COMMITTED")); err != nil {
			continue
		}
		if !ok || v > best {
			best, ok = v, true
		}
	}
	return best, ok, nil
}

// Open implements Store.
func (s *DiskStore) Open(rank, version int) (Snapshot, error) {
	dir := s.dir(rank, version)
	if _, err := os.Stat(dir); errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: rank %d version %d", ErrNotFound, rank, version)
	}
	if _, err := os.Stat(filepath.Join(dir, "COMMITTED")); err != nil {
		return nil, fmt.Errorf("%w: rank %d version %d", ErrNotCommitted, rank, version)
	}
	return &diskSnap{dir: dir}, nil
}

// Retire implements Store.
func (s *DiskStore) Retire(rank, version int) error {
	rankDir := filepath.Join(s.root, fmt.Sprintf("rank%04d", rank))
	entries, err := os.ReadDir(rankDir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "v") {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(e.Name(), "v%d", &v); err != nil {
			continue
		}
		if v < version {
			if err := os.RemoveAll(filepath.Join(rankDir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// Truncate implements Store.
func (s *DiskStore) Truncate(rank, version int) error {
	rankDir := filepath.Join(s.root, fmt.Sprintf("rank%04d", rank))
	entries, err := os.ReadDir(rankDir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "v") {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(e.Name(), "v%d", &v); err != nil {
			continue
		}
		if v > version {
			if err := os.RemoveAll(filepath.Join(rankDir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

type diskSnap struct{ dir string }

func (d *diskSnap) ReadSection(name string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(d.dir, sectionFile(name)))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: section %q", ErrNotFound, name)
	}
	return data, err
}

func (d *diskSnap) Sections() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, "s_") && strings.HasSuffix(n, ".bin") {
			names = append(names, strings.TrimSuffix(strings.TrimPrefix(n, "s_"), ".bin"))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *diskSnap) Close() error { return nil }
