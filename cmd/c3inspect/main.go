// Command c3inspect examines checkpoints in an on-disk store: which
// versions are committed per rank, the global recovery line, the commit
// marker's metadata (membership epoch, codec geometry, per-section
// digests), and the per-section contents of a checkpoint.
//
// Usage:
//
//	c3inspect -store /tmp/ckpts                 # overview with marker meta
//	c3inspect -store /tmp/ckpts -rank 2 -v 3    # one checkpoint's sections,
//	                                            # digest-verified against the
//	                                            # commit marker
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"c3/internal/stable"
)

func main() {
	var (
		dir     = flag.String("store", "", "checkpoint directory (required)")
		rank    = flag.Int("rank", -1, "rank to inspect (-1: overview)")
		version = flag.Int("v", -1, "version to inspect (-1: last committed)")
		ranks   = flag.Int("ranks", 64, "maximum rank to scan in the overview")
	)
	flag.Parse()
	if *dir == "" {
		fatalf("-store is required")
	}
	store, err := stable.NewDiskStore(*dir)
	if err != nil {
		fatalf("open store: %v", err)
	}

	if *rank < 0 {
		overview(store, *ranks)
		return
	}
	inspect(store, *rank, *version)
}

// overview lists each rank's last committed version with its marker
// metadata and the global recovery line.
func overview(store *stable.DiskStore, ranks int) {
	lasts := make([]int, 0, ranks)
	oks := make([]bool, 0, ranks)
	found := 0
	for r := 0; r < ranks; r++ {
		v, ok, err := store.LastCommitted(r)
		if err != nil {
			fatalf("rank %d: %v", r, err)
		}
		if !ok {
			continue
		}
		fmt.Printf("rank %4d: last committed version %d%s\n", r, v, markerBrief(store, r, v))
		found++
		lasts = append(lasts, v)
		oks = append(oks, true)
	}
	if found == 0 {
		fmt.Println("no committed checkpoints")
		return
	}
	if line, ok := stable.GlobalLine(lasts, oks); ok {
		fmt.Printf("global recovery line (over %d ranks with checkpoints): version %d\n", found, line)
	}
}

// markerBrief renders the one-line marker summary for the overview.
func markerBrief(store *stable.DiskStore, rank, version int) string {
	meta, err := store.Meta(rank, version)
	switch {
	case errors.Is(err, stable.ErrLegacyMarker):
		return "  (pre-metadata marker)"
	case err != nil:
		return fmt.Sprintf("  (marker: %v)", err)
	}
	return fmt.Sprintf("  membership-epoch %d codec %s sections %d",
		meta.MembershipEpoch, meta.CodecName(), len(meta.Sections))
}

// inspect prints one checkpoint's sections and cross-checks them against
// the commit marker's digests.
func inspect(store *stable.DiskStore, rank, version int) {
	v := version
	if v < 0 {
		last, ok, err := store.LastCommitted(rank)
		if err != nil || !ok {
			fatalf("rank %d has no committed checkpoint (%v)", rank, err)
		}
		v = last
	}

	meta, metaErr := store.Meta(rank, v)
	recorded := make(map[string]stable.SectionMeta, len(meta.Sections))
	switch {
	case errors.Is(metaErr, stable.ErrLegacyMarker):
		fmt.Printf("rank %d version %d: committed, pre-metadata marker (no digests to verify)\n", rank, v)
	case metaErr != nil:
		fatalf("rank %d version %d marker: %v", rank, v, metaErr)
	default:
		fmt.Printf("rank %d version %d: membership-epoch %d, codec %s\n",
			rank, v, meta.MembershipEpoch, meta.CodecName())
		for _, s := range meta.Sections {
			recorded[s.Name] = s
		}
	}

	snap, err := store.Open(rank, v)
	if err != nil {
		fatalf("open rank %d version %d: %v", rank, v, err)
	}
	defer snap.Close()
	sections, err := snap.Sections()
	if err != nil {
		fatalf("list sections: %v", err)
	}
	total, bad := 0, 0
	for _, name := range sections {
		data, err := snap.ReadSection(name)
		if err != nil {
			fatalf("read %q: %v", name, err)
		}
		note := ""
		if s, ok := recorded[name]; ok {
			switch {
			case s.Bytes != len(data):
				note = fmt.Sprintf("  SIZE MISMATCH (marker %d)", s.Bytes)
				bad++
			case s.Sum != stable.SectionSum(data):
				note = fmt.Sprintf("  DIGEST MISMATCH (marker %016x)", s.Sum)
				bad++
			default:
				note = fmt.Sprintf("  fnv %016x ok", s.Sum)
			}
			delete(recorded, name)
		}
		fmt.Printf("  %-10s %8d bytes%s\n", name, len(data), note)
		total += len(data)
	}
	fmt.Printf("  %-10s %8d bytes\n", "total", total)
	for name := range recorded {
		fmt.Printf("  MISSING: marker records section %q but the store has none\n", name)
		bad++
	}
	if bad > 0 {
		fatalf("%d section(s) disagree with the commit marker", bad)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "c3inspect: "+format+"\n", args...)
	os.Exit(1)
}
