package transport

// This file defines how message payloads cross a real wire. The in-memory
// Network passes payloads by reference, so it never needs this; the TCP
// mesh (transport/tcp) serializes every payload into a frame and must be
// able to rebuild it on the receiving side without importing the packages
// that define the payload types (they import transport, so the dependency
// must point this way).
//
// A payload that can cross a wire implements WirePayload; the owning
// package registers a matching decoder for its kind byte at init time.

import (
	"fmt"
	"sync"
)

// Wire payload kinds. Each kind is owned by the package that registers its
// decoder; the values are part of the TCP frame format and must not be
// reused.
const (
	// WireKindEnvelope is an *mpi.Envelope (registered by internal/mpi).
	WireKindEnvelope uint8 = 1
	// WireKindRepl is a stable-store replication payload (registered by
	// internal/stable).
	WireKindRepl uint8 = 2
	// WireKindDetect is a failure-detector payload — heartbeats, suspicion
	// gossip, and epoch-agreement messages (registered by internal/detect).
	WireKindDetect uint8 = 3
	// WireKindRelay is an inter-group relay envelope: another kind's payload
	// wrapped with its original sender and final destination, forwarded
	// through an intermediate rank (registered by this package; see relay.go).
	WireKindRelay uint8 = 4
)

// WirePayload is implemented by payloads that can cross a real wire.
type WirePayload interface {
	// WireKind identifies the decoder for this payload.
	WireKind() uint8
	// MarshalWire returns the payload's wire encoding.
	MarshalWire() []byte
}

var (
	wireDecMu    sync.RWMutex
	wireDecoders = map[uint8]func(data []byte) (any, error){}
)

// RegisterWireDecoder installs the decoder for a payload kind. It panics on
// duplicate registration — two packages claiming one kind byte is a build
// structure bug.
func RegisterWireDecoder(kind uint8, dec func(data []byte) (any, error)) {
	wireDecMu.Lock()
	defer wireDecMu.Unlock()
	if _, dup := wireDecoders[kind]; dup {
		panic(fmt.Sprintf("transport: duplicate wire decoder for kind %d", kind))
	}
	wireDecoders[kind] = dec
}

// DecodeWirePayload rebuilds a payload from its wire encoding. The data
// slice is owned by the caller; decoders must copy what they keep.
func DecodeWirePayload(kind uint8, data []byte) (any, error) {
	wireDecMu.RLock()
	dec := wireDecoders[kind]
	wireDecMu.RUnlock()
	if dec == nil {
		return nil, fmt.Errorf("transport: no wire decoder for payload kind %d", kind)
	}
	return dec(data)
}
