package apps

import (
	"c3/internal/cluster"
	"c3/internal/mpi"
)

// SP mirrors the NAS SP benchmark's ADI structure: each time step sweeps
// the grid in x (local line solves), transposes the grid across ranks with
// an all-to-all so the y sweep is also local, sweeps in y, and transposes
// back. The paper places the checkpoint location "at the bottom of the
// step loop in the main routine".
func init() {
	Register(&Kernel{
		Name:        "SP",
		Description: "ADI sweeps with alltoall transposes per time step",
		Defaults: func(c Class) Params {
			n, _ := sized(Params{Class: c}, map[Class]int{ClassS: 32, ClassW: 128, ClassA: 256}, nil)
			_, it := sized(Params{Class: c}, nil, map[Class]int{ClassS: 6, ClassW: 16, ClassA: 32})
			return Params{Class: c, N: n, Iters: it}
		},
		App: spApp,
	})
}

func spApp(p Params, out *Output) func(cluster.Env) error {
	return func(env cluster.Env) error {
		n, iters := sized(p,
			map[Class]int{ClassS: 32, ClassW: 128, ClassA: 256},
			map[Class]int{ClassS: 6, ClassW: 16, ClassA: 32})
		st := env.State()
		r, size := env.Rank(), env.Size()
		// Pad n to a multiple of the rank count so the transpose is exact.
		for n%size != 0 {
			n++
		}
		rows := n / size

		it := st.Int("it")
		grid := st.Float64s("grid", rows*n).Data()

		restored, err := env.Restore()
		if err != nil {
			return err
		}
		w := env.World()

		if !restored && it.Get() == 0 {
			for i := 0; i < rows; i++ {
				for j := 0; j < n; j++ {
					grid[i*n+j] = float64((r*rows+i)*3+j) * 0.0625
				}
			}
		}

		sweep := func(g []float64) {
			// Thomas-like smoothing along each local row.
			for i := 0; i < rows; i++ {
				row := g[i*n : (i+1)*n]
				for j := 1; j < n; j++ {
					row[j] += 0.4 * row[j-1]
				}
				for j := n - 2; j >= 0; j-- {
					row[j] += 0.2 * row[j+1]
				}
				for j := 0; j < n; j++ {
					row[j] *= 0.5
				}
			}
		}

		sendBuf := make([]byte, 8*rows*n)
		recvBuf := make([]byte, 8*rows*n)
		scratch := make([]float64, rows*n)

		transpose := func(g []float64) error {
			// Chunk destined for rank q: the rows×rows block in columns
			// [q*rows, (q+1)*rows).
			for q := 0; q < size; q++ {
				for i := 0; i < rows; i++ {
					for j := 0; j < rows; j++ {
						scratch[q*rows*rows+i*rows+j] = g[i*n+q*rows+j]
					}
				}
			}
			mpi.PutFloat64s(sendBuf, scratch)
			if err := w.Alltoall(sendBuf, rows*rows, mpi.TypeFloat64, recvBuf); err != nil {
				return err
			}
			mpi.GetFloat64s(scratch, recvBuf)
			// Block from rank q holds their rows of our column band;
			// transpose each block into place.
			for q := 0; q < size; q++ {
				blk := scratch[q*rows*rows : (q+1)*rows*rows]
				for i := 0; i < rows; i++ {
					for j := 0; j < rows; j++ {
						g[j*n+q*rows+i] = blk[i*rows+j]
					}
				}
			}
			return nil
		}

		for it.Get() < iters {
			sweep(grid) // x sweep
			if err := transpose(grid); err != nil {
				return err
			}
			sweep(grid) // y sweep (on transposed data)
			if err := transpose(grid); err != nil {
				return err
			}
			it.Add(1)
			if err := env.Checkpoint(); err != nil { // bottom of the step loop
				return err
			}
		}
		sum := 0.0
		for i := range grid {
			sum += grid[i] * float64(i%17+1) * 1e-3
		}
		out.Report(r, sum)
		return nil
	}
}
