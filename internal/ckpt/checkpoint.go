package ckpt

import (
	"fmt"

	"c3/internal/mpi"
	"c3/internal/stable"
	"c3/internal/statesave"
	"c3/internal/trace"
	"c3/internal/wire"
)

// Section names within a checkpoint version.
const (
	secApp      = "app"      // application state (statesave registry dump)
	secAppInc   = "appinc"   // application state, incremental encoding
	secMPI      = "mpi"      // basic MPI state + handle tables + counters
	secEarly    = "early"    // Early-Message-Registry (written at start)
	secLate     = "late"     // Late-Message-Registry (written at commit)
	secResults  = "results"  // collective result log (written at commit)
	secRequests = "requests" // request table (written at commit)
)

// Checkpoint is the pragma: the application calls it at every potential
// checkpoint location (#pragma ccc checkpoint). With force, a checkpoint is
// taken unconditionally; otherwise the policy and the
// someone-else-started-a-checkpoint condition decide (Figure 5).
func (l *Layer) Checkpoint(force bool) error {
	if l.err != nil {
		return l.err
	}
	l.pragmaCount++
	if err := l.checkControl(); err != nil {
		return err
	}
	if l.mode != ModeRun {
		// A pragma reached while a checkpoint is still completing (or
		// during recovery) does not start a new one; recovery lines never
		// cross.
		return nil
	}
	fire := force
	if !fire && l.cfg.Policy.EveryNthPragma > 0 && l.pragmaCount%l.cfg.Policy.EveryNthPragma == 0 {
		fire = true
	}
	if !fire && l.cfg.Policy.Interval > 0 && l.clock().Sub(l.lastCkptTime) >= l.cfg.Policy.Interval {
		fire = true
	}
	if !fire && l.extCheckpoint.CompareAndSwap(true, false) {
		fire = true // an operator asked for a checkpoint now (ops plane)
	}
	if !fire && l.nextStartedCount > 0 {
		fire = true // join a checkpoint another process initiated
	}
	if !fire {
		return nil
	}
	if err := l.startCheckpoint(); err != nil {
		return err
	}
	// Figure 5's post-start shortcut: if every process already started (we
	// were the last) and no late messages are expected, the checkpoint can
	// commit immediately.
	return l.applyTransitions()
}

// startCheckpoint is chkpt_StartCheckpoint (Figure 5): advance the epoch,
// save application and MPI state plus the Early-Message-Registry, send
// Checkpoint-Initiated control messages carrying the Sent-Counts, and
// rotate the receive counters.
func (l *Layer) startCheckpoint() error {
	begin := l.clock()
	l.epoch++
	line := l.epoch
	sp := trace.Default().Begin(int32(l.rank), trace.KindSerialize, 0, line)
	defer func() { sp.End(l.pendingBytes) }()
	l.pendingLine = line
	l.pendingBytes = 0

	// Prepare counters first (Figure 5): "Copy Received-Counters to
	// Late-Received-Counters; copy Early-Received-Counters to
	// Received-Counters; reset Early-Received-Counters." The completion
	// condition is then LateReceived[Q] == SentCount_Q for every Q. The
	// rotation happens before the MPI state is saved so that recovery
	// restores the new epoch's Received counters.
	for q := 0; q < l.n; q++ {
		l.lateRecvd[q] = l.received[q]
		l.received[q], l.earlyRecvd[q] = l.earlyRecvd[q], 0
	}

	// In async mode the store is never touched on this thread: sections are
	// captured into a commit job the background committer writes out.
	// writeSection abstracts over the two destinations.
	var writeSection func(name string, data []byte) error
	if l.committer != nil {
		l.pendingJob = &commitJob{line: line}
		writeSection = func(name string, data []byte) error {
			l.pendingJob.sections = append(l.pendingJob.sections, namedSection{name: name, data: data})
			return nil
		}
	} else {
		ck, err := l.store.Begin(l.rank, int(line))
		if err != nil {
			return l.fatal(fmt.Errorf("ckpt: begin checkpoint %d: %w", line, err))
		}
		l.pending = ck
		writeSection = ck.WriteSection
	}

	// Save application state: a full registry dump, or — with incremental
	// checkpointing enabled — only the sections whose contents changed
	// since the previous line, anchored by periodic full snapshots.
	if k := l.cfg.FullCheckpointEvery; k > 1 {
		cur := l.state.Sections()
		full := l.lastSections == nil || (line-1)%uint64(k) == 0
		var appImg []byte
		if full {
			appImg = statesave.EncodeIncrement(true, 0, cur, nil)
		} else {
			delta, removed := statesave.DiffSections(l.lastSections, cur)
			appImg = statesave.EncodeIncrement(false, line-1, delta, removed)
		}
		l.lastSections = cur
		if err := writeSection(secAppInc, appImg); err != nil {
			return l.fatal(err)
		}
		l.stats.CheckpointBytes += uint64(len(appImg))
		l.pendingBytes += uint64(len(appImg))
	} else {
		appImg := l.state.Save()
		if err := writeSection(secApp, appImg); err != nil {
			return l.fatal(err)
		}
		l.stats.CheckpointBytes += uint64(len(appImg))
		l.pendingBytes += uint64(len(appImg))
	}

	// Save basic MPI state and the handle tables.
	mpiImg := l.saveMPIState()
	if err := writeSection(secMPI, mpiImg); err != nil {
		return l.fatal(err)
	}
	l.stats.CheckpointBytes += uint64(len(mpiImg))
	l.pendingBytes += uint64(len(mpiImg))

	// Save and reset the Early-Message-Registry.
	earlyImg := l.earlyReg.Serialize()
	if err := writeSection(secEarly, earlyImg); err != nil {
		return l.fatal(err)
	}
	l.stats.CheckpointBytes += uint64(len(earlyImg))
	l.pendingBytes += uint64(len(earlyImg))
	l.earlyReg.Reset()

	// Send Checkpoint-Initiated to every other process Q with Sent-Count[Q].
	for q := 0; q < l.n; q++ {
		if q == l.rank {
			continue
		}
		m := ctrlInitiated{Line: line, SentToYou: l.sent[q]}
		if err := l.ctrl.SendBytes(m.encode(), q, ctrlTagInitiated); err != nil {
			return l.fatal(err)
		}
	}

	// Self-messages never pass through the control plane: account for them
	// directly (an Isend to self before the line received after it is a
	// legitimate late message).
	l.started = make([]bool, l.n)
	l.startedCount = 0
	l.expectedLate = newExpected(l.n)
	l.started[l.rank] = true
	l.startedCount++
	l.expectedLate[l.rank] = int64(l.sent[l.rank])
	// Merge control messages that arrived before we started this line.
	for q := 0; q < l.n; q++ {
		if l.nextStarted[q] {
			l.started[q] = true
			l.startedCount++
			l.expectedLate[q] = l.nextExpected[q]
		}
		l.sent[q] = 0
	}
	l.nextStarted = make([]bool, l.n)
	l.nextStartedCount = 0
	l.nextExpected = newExpected(l.n)

	l.reqs.BeginPeriod()
	l.results.Reset()
	// Begin the period with an empty Late-Message-Registry. After a
	// recovery, the registry still holds the previous line's replayed
	// (consumed) entries — maybeFinishRestore only requires them consumed,
	// not removed. Without this reset they are serialized into the line
	// committed below and a second recovery replays them again, delivering
	// message data that is already part of the restored state (the
	// recovery-line checksum divergence the schedule explorer pinned down).
	l.lateReg.Reset()
	l.mode = ModeNonDetLog
	l.stats.CheckpointsTaken++
	l.lastCkptTime = l.clock()
	l.stats.StartDuration += l.clock().Sub(begin)
	return nil
}

// commitCheckpoint is chkpt_CommitCheckpoint (Figure 5): save the
// Late-Message-Registry (plus the collective result log and the request
// table, whose contents are only known once all late messages are in),
// commit the version, and return to Run mode.
func (l *Layer) commitCheckpoint() error {
	begin := l.clock()
	if l.pending == nil && l.pendingJob == nil {
		return l.fatal(fmt.Errorf("ckpt: commit without open checkpoint"))
	}
	lateImg := l.lateReg.Serialize()
	resImg := l.results.Serialize()
	reqImg := l.reqs.Serialize(l.pendingLine)
	l.stats.CheckpointBytes += uint64(len(lateImg) + len(resImg) + len(reqImg))
	l.pendingBytes += uint64(len(lateImg) + len(resImg) + len(reqImg))
	if l.committer != nil {
		// Async: the line is protocol-complete; hand the full capture to the
		// background committer. The FIFO pipeline guarantees the previous
		// line is durable before this one commits at the store.
		job := l.pendingJob
		l.pendingJob = nil
		job.sections = append(job.sections,
			namedSection{name: secLate, data: lateImg},
			namedSection{name: secResults, data: resImg},
			namedSection{name: secRequests, data: reqImg})
		job.retireBelow = l.pendingRetire
		l.pendingRetire = 0
		if err := l.committer.enqueue(job); err != nil {
			return l.fatal(fmt.Errorf("ckpt: async commit checkpoint %d: %w", l.pendingLine, err))
		}
	} else {
		sp := trace.Default().Begin(int32(l.rank), trace.KindCommit, 0, l.pendingLine)
		if err := l.pending.WriteSection(secLate, lateImg); err != nil {
			sp.End(0)
			return l.fatal(err)
		}
		if err := l.pending.WriteSection(secResults, resImg); err != nil {
			sp.End(0)
			return l.fatal(err)
		}
		if err := l.pending.WriteSection(secRequests, reqImg); err != nil {
			sp.End(0)
			return l.fatal(err)
		}
		if err := l.pending.Commit(); err != nil {
			sp.End(0)
			return l.fatal(fmt.Errorf("ckpt: commit checkpoint %d: %w", l.pendingLine, err))
		}
		sp.End(l.pendingBytes)
		l.stats.StoredBytes += storedSizeOf(l.pending, l.pendingBytes)
		l.pending = nil
	}
	l.lateReg.Reset()
	l.results.Reset()
	l.reqs.EndPeriod()
	l.mode = ModeRun
	l.stats.CommitDuration += l.clock().Sub(begin)
	return nil
}

// storedSizeOf is the stable-storage footprint of a committed handle: the
// store's own report when it gives one (the diskless replicated stores
// count local copy plus replica shards and parity), the line's raw section
// bytes otherwise.
func storedSizeOf(ck stable.Checkpoint, fallback uint64) uint64 {
	if sz, ok := ck.(stable.StoredSizer); ok {
		return uint64(sz.StoredSize())
	}
	return fallback
}

// saveMPIState serializes the "basic MPI state" (Figure 5): world shape,
// processor name, epoch, attached buffers, the handle tables, the rotated
// receive counters, and the request-ID watermark.
func (l *Layer) saveMPIState() []byte {
	w := wire.NewWriter(512)
	w.Int(l.n)
	w.Int(l.rank)
	w.String(l.p.Name())
	w.U64(l.epoch)
	w.Int(l.p.AttachedBuffer())
	w.U64s(l.received)
	w.Bytes32(l.comms.Serialize())
	w.Bytes32(l.types.Serialize())
	w.Bytes32(l.ops.Serialize())
	return w.Bytes()
}

// Restore implements chkpt_RestoreCheckpoint (Figure 5). It is collective
// across all ranks: it finds the most recent recovery line committed on
// every node via a global reduction, loads the local checkpoint, rebuilds
// MPI state, redistributes the Early-Message-Registry to form the
// Was-Early-Registries, and enters Restore mode. It returns false if no
// complete global line exists (the computation restarts from the
// beginning).
func (l *Layer) Restore() (bool, error) {
	begin := l.clock()
	sp := trace.Default().Begin(int32(l.rank), trace.KindRestore, 0, 0)
	restored := false
	var restoredLine uint64
	defer func() {
		if restored {
			sp.End(restoredLine)
		} else {
			sp.End(0)
		}
	}()
	// Commit fence: the global reduction must not observe the store while an
	// asynchronously captured line is still in flight, or ranks would
	// disagree on what "last committed" means.
	if err := l.DrainCommits(); err != nil {
		return false, err
	}
	last, ok, err := l.store.LastCommitted(l.rank)
	if err != nil {
		return false, l.fatal(err)
	}
	mine := int64(-1)
	if ok {
		mine = int64(last)
	}
	in := mpi.Int64Bytes([]int64{mine})
	out := make([]byte, 8)
	if err := l.ctrl.Allreduce(in, out, 1, mpi.TypeInt64, mpi.OpMin); err != nil {
		return false, l.fatal(err)
	}
	line := mpi.BytesInt64s(out)[0]
	if line < 1 {
		// No complete global line: the world restarts from scratch — a new
		// execution generation whose line numbers restart at 1. Checkpoints
		// left over from the dead generation must go now, or a rank that
		// keeps (say) an old line 1 while failing before re-committing it
		// would later pair it with its peers' re-executed line 1.
		if err := l.store.Truncate(l.rank, 0); err != nil {
			return false, l.fatal(fmt.Errorf("ckpt: truncate dead generation: %w", err))
		}
		return false, nil
	}

	// Truncate the dead generation: every version above the agreed line was
	// committed by the execution that just failed (or an even older one) and
	// will be re-written by the re-execution. A rank whose failure discarded
	// in-flight async commits can hold an OLDER generation's checkpoint at
	// the same version number than its peers — without truncation, a later
	// recovery would assemble a recovery line from mixed generations, whose
	// registries and states are mutually inconsistent (wrong Was-Early
	// suppressions deadlock the world; stale payload replays diverge it).
	if err := l.store.Truncate(l.rank, int(line)); err != nil {
		return false, l.fatal(fmt.Errorf("ckpt: truncate above line %d: %w", line, err))
	}

	snap, err := l.store.Open(l.rank, int(line))
	if err != nil {
		return false, l.fatal(fmt.Errorf("ckpt: open checkpoint %d: %w", line, err))
	}
	defer snap.Close()

	// Restore basic MPI state and handle tables.
	mpiImg, err := snap.ReadSection(secMPI)
	if err != nil {
		return false, l.fatal(err)
	}
	if err := l.loadMPIState(mpiImg); err != nil {
		return false, l.fatal(err)
	}

	// Restore application state (following the incremental chain back to
	// its full-snapshot anchor if needed).
	if err := l.loadAppState(snap, uint64(line)); err != nil {
		return false, l.fatal(err)
	}

	// Restore message registries.
	lateImg, err := snap.ReadSection(secLate)
	if err != nil {
		return false, l.fatal(err)
	}
	if l.lateReg, err = LoadLateRegistry(lateImg); err != nil {
		return false, l.fatal(err)
	}
	resImg, err := snap.ReadSection(secResults)
	if err != nil {
		return false, l.fatal(err)
	}
	if l.results, err = LoadResultLog(resImg); err != nil {
		return false, l.fatal(err)
	}
	earlyImg, err := snap.ReadSection(secEarly)
	if err != nil {
		return false, l.fatal(err)
	}
	earlyAtLine, err := LoadEarlyRegistry(earlyImg)
	if err != nil {
		return false, l.fatal(err)
	}

	// Restore the request table (crossing non-blocking requests).
	reqImg, err := snap.ReadSection(secRequests)
	if err != nil {
		return false, l.fatal(err)
	}
	if err := l.restoreRequests(reqImg); err != nil {
		return false, l.fatal(err)
	}

	// Distribute Early-Message-Registry entries to their senders so they
	// can suppress the re-sends, forming each sender's Was-Early-Registry.
	l.wasEarly = NewWasEarly()
	l.wasEarly.AddItems(earlyAtLine.DistributionFor(l.rank)) // self-sends
	for q := 0; q < l.n; q++ {
		if q == l.rank {
			continue
		}
		items := earlyAtLine.DistributionFor(q)
		if err := l.ctrl.SendBytes(encodeSuppressItems(items), q, ctrlTagSuppress); err != nil {
			return false, l.fatal(err)
		}
	}
	scratch := make([]byte, 1<<20)
	for q := 0; q < l.n; q++ {
		if q == l.rank {
			continue
		}
		st, err := l.ctrl.RecvBytes(scratch, q, ctrlTagSuppress)
		if err != nil {
			return false, l.fatal(err)
		}
		items, err := decodeSuppressItems(scratch[:st.Bytes])
		if err != nil {
			return false, l.fatal(err)
		}
		l.wasEarly.AddItems(items)
	}

	// Reset transient protocol state for the new execution.
	l.earlyReg.Reset()
	l.sent = make([]uint64, l.n)
	l.lateRecvd = make([]uint64, l.n)
	l.earlyRecvd = make([]uint64, l.n)
	l.started = make([]bool, l.n)
	l.startedCount = 0
	l.expectedLate = newExpected(l.n)
	l.nextStarted = make([]bool, l.n)
	l.nextStartedCount = 0
	l.nextExpected = newExpected(l.n)
	l.pending = nil
	l.pendingJob = nil
	l.pendingRetire = 0
	l.mode = ModeRestore
	l.stats.Restores++
	l.stats.RestoreDuration += l.clock().Sub(begin)
	l.lastCkptTime = l.clock()
	restored, restoredLine = true, uint64(line)
	l.maybeFinishRestore()
	return true, nil
}

// loadAppState restores the registry from a snapshot: either the plain full
// dump, or an incremental chain walked back to its full anchor and applied
// forward.
func (l *Layer) loadAppState(snap stable.Snapshot, line uint64) error {
	if img, err := snap.ReadSection(secApp); err == nil {
		return l.state.Load(img)
	}
	img, err := snap.ReadSection(secAppInc)
	if err != nil {
		return fmt.Errorf("ckpt: checkpoint %d has neither full nor incremental app state: %w", line, err)
	}
	type increment struct {
		sections map[string]statesave.SectionImage
		removed  []string
	}
	var deltas []increment
	for {
		full, base, sections, removed, err := statesave.DecodeIncrement(img)
		if err != nil {
			return err
		}
		deltas = append(deltas, increment{sections: sections, removed: removed})
		if full {
			break
		}
		baseSnap, err := l.store.Open(l.rank, int(base))
		if err != nil {
			return fmt.Errorf("ckpt: incremental base %d missing: %w", base, err)
		}
		img, err = baseSnap.ReadSection(secAppInc)
		_ = baseSnap.Close() // read-only snapshot; ReadSection's err is what matters
		if err != nil {
			return err
		}
	}
	// Apply from the anchor forward, honoring each delta's tombstones so a
	// section dropped between anchor and line does not resurrect.
	merged := deltas[len(deltas)-1].sections
	for i := len(deltas) - 2; i >= 0; i-- {
		merged = statesave.MergeSections(merged, deltas[i].sections, deltas[i].removed)
	}
	bodies := make(map[string][]byte, len(merged))
	for name, simg := range merged {
		bodies[name] = simg.Body
	}
	if err := l.state.LoadSectionBodies(bodies); err != nil {
		return err
	}
	// Subsequent deltas diff against the restored line's images.
	l.lastSections = merged
	return nil
}

func (l *Layer) loadMPIState(data []byte) error {
	r := wire.NewReader(data)
	n := r.Int()
	rank := r.Int()
	name := r.String()
	epoch := r.U64()
	attached := r.Int()
	received := r.U64s()
	commImg := r.Bytes32()
	typeImg := r.Bytes32()
	opImg := r.Bytes32()
	if err := r.Err(); err != nil {
		return fmt.Errorf("ckpt: corrupt MPI state: %w", err)
	}
	if n != l.n || rank != l.rank {
		return fmt.Errorf("ckpt: checkpoint is for rank %d of %d, this process is rank %d of %d", rank, n, l.rank, l.n)
	}
	_ = name // informational; processor identity may change across restarts
	l.epoch = epoch
	if attached > 0 {
		if err := l.p.BufferAttach(attached); err != nil {
			return err
		}
	}
	if len(received) == l.n {
		copy(l.received, received)
	}
	if err := l.comms.Restore(commImg); err != nil {
		return err
	}
	if err := l.types.Restore(typeImg); err != nil {
		return err
	}
	return l.ops.Verify(opImg)
}
