package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// twoRankExchange builds two salted per-process recorders exchanging a
// few messages with protocol spans, and returns their dumps.
func twoRankExchange(t *testing.T) []*Dump {
	t.Helper()
	a, b := New(256), New(256)
	a.SetSalt(0)
	b.SetSalt(1)

	sp := a.Begin(0, KindCommit, 0, 1)
	for i := 0; i < 3; i++ {
		ctx := a.Send(0, 1, uint64(100+i))
		b.Recv(1, 0, ctx, uint64(100+i))
		back := b.Send(1, 0, uint64(200+i))
		a.Recv(0, 1, back, uint64(200+i))
	}
	sp.End(4096)
	b.Emit(1, KindSuspect, 0, 0)

	return []*Dump{
		{Rank: 0, Events: a.Snapshot()},
		{Rank: 1, Events: b.Snapshot()},
	}
}

func TestMergeStitchesEdges(t *testing.T) {
	tl, err := Merge(twoRankExchange(t))
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	st := tl.Stats()
	if st.Ranks != 2 {
		t.Fatalf("ranks = %d, want 2", st.Ranks)
	}
	if st.Edges != 6 || st.Stitched != 6 || st.OrphanRecvs != 0 {
		t.Fatalf("edges=%d stitched=%d orphans=%d, want 6/6/0", st.Edges, st.Stitched, st.OrphanRecvs)
	}
	if st.InstantCounts[KindSuspect] != 1 {
		t.Fatalf("suspect instants = %d, want 1", st.InstantCounts[KindSuspect])
	}
	// Causal order: ascending clocks, and each stitched edge's recv
	// strictly after its send in the merged order.
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Clock < tl.Events[i-1].Clock {
			t.Fatalf("timeline not clock-ordered at %d", i)
		}
	}
	for span, e := range tl.Edges {
		if e.Recv >= 0 && e.Recv <= e.Send {
			t.Fatalf("edge %#x: recv index %d not after send index %d", span, e.Recv, e.Send)
		}
	}
}

func TestMergeRejectsHappensBeforeViolation(t *testing.T) {
	// A forged pair: recv clock equal to send clock — impossible under the
	// Lamport merge, so Merge must hard-fail.
	dumps := []*Dump{
		{Rank: 0, Events: []Event{
			{Seq: 0, Span: 0x1111, Kind: KindSend, Phase: PhaseSend, Rank: 0, Peer: 1, Clock: 10, Time: 5},
		}},
		{Rank: 1, Events: []Event{
			{Seq: 0, Span: 0x1111, Kind: KindRecv, Phase: PhaseRecv, Rank: 1, Peer: 0, Clock: 10, Time: 6},
		}},
	}
	if _, err := Merge(dumps); err == nil || !strings.Contains(err.Error(), "happens-before") {
		t.Fatalf("Merge = %v, want a happens-before violation error", err)
	}
}

func TestMergeToleratesOrphanRecv(t *testing.T) {
	// A recv whose send fell out of the sender's ring (or whose sender
	// died before dumping) is reported, not fatal.
	dumps := []*Dump{
		{Rank: 1, Events: []Event{
			{Seq: 0, Span: 0x2222, Kind: KindRecv, Phase: PhaseRecv, Rank: 1, Peer: 0, Clock: 3, Time: 1},
		}},
	}
	tl, err := Merge(dumps)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if st := tl.Stats(); st.OrphanRecvs != 1 {
		t.Fatalf("orphan recvs = %d, want 1", st.OrphanRecvs)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	r := New(64)
	var now int64
	r.SetClock(func() int64 { return now })
	for _, d := range []int64{100, 200, 300} {
		sp := r.Begin(0, KindShip, 0, 0)
		now += d
		sp.End(0)
	}
	tl, err := Merge([]*Dump{{Rank: 0, Events: r.Snapshot()}})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	bd := tl.PhaseBreakdown()
	if len(bd) != 1 || bd[0].Kind != KindShip {
		t.Fatalf("breakdown = %+v, want one ship row", bd)
	}
	s := bd[0]
	if s.Count != 3 || s.MinNs != 100 || s.MaxNs != 300 || s.MeanNs != 200 {
		t.Fatalf("ship stats = %+v, want count 3 min 100 mean 200 max 300", s)
	}
	if out := FormatBreakdown(bd); !strings.Contains(out, "ship") || !strings.Contains(out, "300ns") {
		t.Fatalf("FormatBreakdown missing fields:\n%s", out)
	}
}

// TestGoldenSIGKILLTimeline merges the recorded dumps of a real 4-process
// self-healing SIGKILL run (testdata/sigkill4, written by c3node with
// -trace-dir while an external kill -9 took rank 1) and re-verifies the
// whole acceptance property: a causally consistent cross-rank timeline
// whose phase breakdown covers the full recovery arc — suspicion,
// agreement, respawn, reassembly, restore.
func TestGoldenSIGKILLTimeline(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "sigkill4", "*.c3tr"))
	if err != nil || len(paths) != 4 {
		t.Fatalf("golden dumps: %v (found %d, want 4)", err, len(paths))
	}
	var dumps []*Dump
	for _, p := range paths {
		d, err := ReadDump(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		if len(d.Events) == 0 {
			t.Fatalf("%s: empty dump", p)
		}
		dumps = append(dumps, d)
	}

	tl, err := Merge(dumps)
	if err != nil {
		t.Fatalf("golden timeline is causally inconsistent: %v", err)
	}
	st := tl.Stats()
	if st.Ranks != 4 {
		t.Fatalf("ranks = %d, want 4", st.Ranks)
	}
	if st.Stitched == 0 {
		t.Fatal("no stitched message edges: trace contexts did not cross processes")
	}

	// The recovery arc. Suspicion, epoch commit and respawn are instants;
	// agreement, reassembly and restore are duration spans.
	for _, kind := range []Kind{KindSuspect, KindEpoch, KindRespawn} {
		if st.InstantCounts[kind] == 0 {
			t.Errorf("timeline has no %s events", kind)
		}
	}
	spanKinds := map[Kind]bool{}
	for _, s := range tl.PhaseBreakdown() {
		spanKinds[s.Kind] = true
	}
	for _, kind := range []Kind{KindAgree, KindReassemble, KindRestore, KindCommit, KindSerialize, KindShip, KindAck} {
		if !spanKinds[kind] {
			t.Errorf("phase breakdown has no %s spans", kind)
		}
	}
}

// TestDumpDirRoundTrip: WriteDump/ReadDump through a real directory.
func TestDumpDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := New(64)
	r.SetSalt(5)
	r.Emit(5, KindMember, 0, 3)
	path, err := r.WriteDump(dir, 5)
	if err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	if filepath.Base(path) != "rank5.c3tr" {
		t.Fatalf("dump path %q, want rank5.c3tr", path)
	}
	d, err := ReadDump(path)
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if d.Rank != 5 || len(d.Events) != 1 || d.Events[0].Kind != KindMember {
		t.Fatalf("round trip mangled: %+v", d)
	}
	// Dumps overwrite: a second write holds the newer snapshot.
	r.Emit(5, KindFence, 0, 1)
	if _, err := r.WriteDump(dir, 5); err != nil {
		t.Fatalf("second WriteDump: %v", err)
	}
	if d, err = ReadDump(path); err != nil || len(d.Events) != 2 {
		t.Fatalf("overwrite round trip: %v, %d events", err, len(d.Events))
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("%d files in dump dir, want 1 (overwrite, not accumulate)", len(entries))
	}
}
