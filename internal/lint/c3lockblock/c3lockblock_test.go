package c3lockblock_test

import (
	"strings"
	"testing"

	"c3/internal/lint/c3lockblock"
	"c3/internal/lint/linttest"
)

// TestFixture covers the historical PR 4 redial-under-per-peer-lock shape
// (caught through the transitive may-block propagation), the direct
// blocking operations, and the sanctioned exceptions (cond.Wait, goroutine
// bodies, polling selects, annotated FIFO framing).
func TestFixture(t *testing.T) {
	res := linttest.Run(t, "internal/lint/testdata/src/lockblock", "fixture/lockblock",
		c3lockblock.Analyzer)

	if res.Suppressed != 1 {
		t.Errorf("suppressed = %d, want 1 (the framed() FIFO allow)", res.Suppressed)
	}

	// The historical regression: the dial is one call below the lock, so
	// only the interprocedural propagation can see it.
	for _, f := range res.Findings {
		if strings.Contains(f.Message, "call to redial") && strings.Contains(f.Message, "net.Dial") {
			return
		}
	}
	t.Errorf("historical redial-under-lock reconstruction not flagged; findings: %v", res.Findings)
}
