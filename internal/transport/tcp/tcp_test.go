package tcp

import (
	"fmt"
	"testing"
	"time"

	"c3/internal/transport"
	"c3/internal/wire"
)

// testPayload is a minimal wire payload for transport tests.
type testPayload []byte

func (p testPayload) TransportSize() int { return len(p) }
func (p testPayload) WireKind() uint8    { return 0xEE }
func (p testPayload) MarshalWire() []byte {
	w := wire.NewWriter(len(p))
	w.Bytes32(p)
	return w.Bytes()
}

func init() {
	transport.RegisterWireDecoder(0xEE, func(data []byte) (any, error) {
		r := wire.NewReader(data)
		b := r.Bytes32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return testPayload(b), nil
	})
}

// newTestMeshes brings up an n-rank mesh world on ephemeral ports.
func newTestMeshes(t *testing.T, n int, opts ...Option) []*Mesh {
	t.Helper()
	addrs := make([]string, n)
	meshes := make([]*Mesh, n)
	// Two passes: bind rank 0..n-1 with :0, collecting real addresses as we
	// go; later ranks get the earlier ranks' real addresses, and earlier
	// meshes learn later addresses lazily via the full list rebuild below.
	for i := 0; i < n; i++ {
		addrs[i] = "127.0.0.1:0"
	}
	for i := 0; i < n; i++ {
		m, err := New(i, addrs, opts...)
		if err != nil {
			t.Fatalf("mesh %d: %v", i, err)
		}
		addrs[i] = m.Addr()
		meshes[i] = m
	}
	// Rebind every mesh's view of peer addresses to the real ones.
	for _, m := range meshes {
		copy(m.addrs, addrs)
	}
	t.Cleanup(func() {
		for _, m := range meshes {
			m.Close()
		}
	})
	return meshes
}

func recvOne(t *testing.T, m *Mesh, timeout time.Duration) (transport.Message, bool) {
	t.Helper()
	done := make(chan transport.Message, 1)
	go func() {
		msg, err := m.Endpoint(m.Self()).Recv()
		if err == nil {
			done <- msg
		}
	}()
	select {
	case msg := <-done:
		return msg, true
	case <-time.After(timeout):
		return transport.Message{}, false
	}
}

func TestMeshDeliveryAndFIFO(t *testing.T) {
	meshes := newTestMeshes(t, 3)
	const k = 50
	for i := 0; i < k; i++ {
		p := testPayload(fmt.Sprintf("msg-%03d", i))
		if err := meshes[0].Send(transport.Message{From: 0, To: 1, Class: transport.Data, Payload: p}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < k; i++ {
		msg, ok := recvOne(t, meshes[1], 5*time.Second)
		if !ok {
			t.Fatalf("timed out waiting for message %d", i)
		}
		want := fmt.Sprintf("msg-%03d", i)
		if got := string(msg.Payload.(testPayload)); got != want {
			t.Fatalf("message %d: got %q, want %q (FIFO violated)", i, got, want)
		}
		if msg.From != 0 || msg.To != 1 {
			t.Fatalf("message %d: bad addressing %d->%d", i, msg.From, msg.To)
		}
	}
}

func TestMeshLoopback(t *testing.T) {
	meshes := newTestMeshes(t, 2)
	if err := meshes[1].Send(transport.Message{From: 1, To: 1, Payload: testPayload("self")}); err != nil {
		t.Fatalf("self send: %v", err)
	}
	msg, ok := recvOne(t, meshes[1], time.Second)
	if !ok || string(msg.Payload.(testPayload)) != "self" {
		t.Fatalf("loopback failed: %v %v", msg, ok)
	}
}

func TestMeshGenerationFilter(t *testing.T) {
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0"}
	m0, err := New(0, addrs, WithGeneration(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()
	addrs[0] = m0.Addr()
	m1, err := New(1, addrs, WithGeneration(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	addrs[1] = m1.Addr()
	copy(m0.addrs, addrs)
	copy(m1.addrs, addrs)

	if err := m0.Send(transport.Message{From: 0, To: 1, Payload: testPayload("stale")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, m1, 300*time.Millisecond); ok {
		t.Fatal("frame from generation 1 delivered into generation 2")
	}
}

// TestMeshReconnectAfterRestart is the reconnect-on-restart contract: a
// peer dies (its mesh closes, as a SIGKILLed process's kernel would), a
// replacement binds the same address, and the next sends reach it without
// any lost-frame window — the half-open probe must catch the dead cached
// connection before TCP swallows the first write.
func TestMeshReconnectAfterRestart(t *testing.T) {
	meshes := newTestMeshes(t, 2)
	addrs := append([]string(nil), meshes[0].addrs...)

	// Warm the 0->1 connection.
	if err := meshes[0].Send(transport.Message{From: 0, To: 1, Payload: testPayload("warm")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvOne(t, meshes[1], 2*time.Second); !ok {
		t.Fatal("warm-up message lost")
	}

	// Rank 1 "dies" and is re-executed on the same address.
	meshes[1].Close()
	time.Sleep(50 * time.Millisecond)
	replacement, err := New(1, addrs, WithDialWindow(2*time.Second))
	if err != nil {
		t.Fatalf("replacement: %v", err)
	}
	defer replacement.Close()

	if err := meshes[0].Send(transport.Message{From: 0, To: 1, Payload: testPayload("after-restart")}); err != nil {
		t.Fatal(err)
	}
	msg, ok := recvOne(t, replacement, 5*time.Second)
	if !ok {
		t.Fatal("message to restarted peer lost")
	}
	if got := string(msg.Payload.(testPayload)); got != "after-restart" {
		t.Fatalf("restarted peer got %q", got)
	}
}

func TestMeshDropsToDeadPeerWithoutError(t *testing.T) {
	meshes := newTestMeshes(t, 2, WithDialWindow(500*time.Millisecond))
	meshes[1].Close()
	time.Sleep(20 * time.Millisecond)
	// No replacement listens: sends must drop, not error or hang.
	start := time.Now()
	if err := meshes[0].Send(transport.Message{From: 0, To: 1, Payload: testPayload("x")}); err != nil {
		t.Fatalf("send to dead peer errored: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("send to dead peer blocked %v", d)
	}
	if meshes[0].Stats().MessagesDropped == 0 {
		t.Fatal("drop not counted")
	}
}
