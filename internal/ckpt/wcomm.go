package ckpt

import (
	"fmt"

	"c3/internal/mpi"
)

// WComm is a protocol-wrapped communicator: the application-facing
// equivalent of an MPI communicator whose every operation passes through
// the coordination layer, exactly as the C3 runtime intercepts "all calls
// from the instrumented application program to the MPI library".
type WComm struct {
	l      *Layer
	c      *mpi.Comm
	handle int
}

// Rank returns the calling process's rank in this communicator.
func (w *WComm) Rank() int { return w.c.Rank() }

// Size returns the communicator size.
func (w *WComm) Size() int { return w.c.Size() }

// Handle returns the communicator's table handle (stable across restarts).
func (w *WComm) Handle() int { return w.handle }

// Layer returns the owning protocol layer.
func (w *WComm) Layer() *Layer { return w.l }

// Dup duplicates the communicator; the creation is recorded in the
// communicator table so it can be replayed on recovery. Collective.
func (w *WComm) Dup() (*WComm, error) {
	h, err := w.l.comms.Dup(w.handle)
	if err != nil {
		return nil, err
	}
	e, _ := w.l.comms.Get(h)
	return &WComm{l: w.l, c: e.Comm, handle: h}, nil
}

// Split splits the communicator by color and key, recording the recipe.
// Callers passing a negative color receive nil. Collective.
func (w *WComm) Split(color, key int) (*WComm, error) {
	h, err := w.l.comms.Split(w.handle, color, key)
	if err != nil {
		return nil, err
	}
	e, _ := w.l.comms.Get(h)
	if e.Comm == nil {
		return nil, nil
	}
	return &WComm{l: w.l, c: e.Comm, handle: h}, nil
}

// CommByHandle returns the wrapped communicator for a table handle, for
// applications that persist handles in their checkpointed state.
func (l *Layer) CommByHandle(h int) (*WComm, error) {
	e, ok := l.comms.Get(h)
	if !ok || e.Comm == nil {
		return nil, fmt.Errorf("ckpt: no communicator with handle %d", h)
	}
	return &WComm{l: l, c: e.Comm, handle: h}, nil
}

func checkWrappedTag(tag int) error {
	if tag < 0 || tag > mpi.MaxUserTag {
		return fmt.Errorf("%w: tag %d outside [0,%d]", mpi.ErrInvalid, tag, mpi.MaxUserTag)
	}
	return nil
}

// --- Blocking point-to-point ---

// Send transmits count elements of dt from buf to dest with the protocol
// applied.
func (w *WComm) Send(buf []byte, count int, dt *mpi.Datatype, dest, tag int) error {
	if err := checkWrappedTag(tag); err != nil {
		return err
	}
	packed, err := dt.Pack(buf, count)
	if err != nil {
		return err
	}
	return w.l.sendUser(w.c, packed, dest, tag, false)
}

// SendBytes sends a raw byte payload.
func (w *WComm) SendBytes(data []byte, dest, tag int) error {
	if err := checkWrappedTag(tag); err != nil {
		return err
	}
	return w.l.sendUser(w.c, data, dest, tag, false)
}

// Recv receives into buf; src may be mpi.AnySource and tag mpi.AnyTag.
func (w *WComm) Recv(buf []byte, count int, dt *mpi.Datatype, src, tag int) (mpi.Status, error) {
	res, err := w.l.recvUser(w.c, count*dt.Size(), src, tag, false)
	if err != nil {
		return res.status, err
	}
	if dt.Size() > 0 {
		n := len(res.payload) / dt.Size()
		if _, err := dt.Unpack(res.payload, buf, n); err != nil {
			return res.status, err
		}
	}
	return res.status, nil
}

// RecvBytes receives a raw byte payload.
func (w *WComm) RecvBytes(buf []byte, src, tag int) (mpi.Status, error) {
	res, err := w.l.recvUser(w.c, len(buf), src, tag, false)
	if err != nil {
		return res.status, err
	}
	copy(buf, res.payload)
	return res.status, nil
}

// Sendrecv performs a combined exchange. The receive is posted first, so
// self-exchanges and symmetric neighbor exchanges cannot deadlock.
func (w *WComm) Sendrecv(
	sendBuf []byte, sendCount int, sendType *mpi.Datatype, dest, sendTag int,
	recvBuf []byte, recvCount int, recvType *mpi.Datatype, src, recvTag int,
) (mpi.Status, error) {
	rid, err := w.Irecv(recvBuf, recvCount, recvType, src, recvTag)
	if err != nil {
		return mpi.Status{}, err
	}
	if err := w.Send(sendBuf, sendCount, sendType, dest, sendTag); err != nil {
		return mpi.Status{}, err
	}
	return w.Wait(rid)
}

// Probe blocks until a matching message is available (or, during recovery,
// a matching Late-Message-Registry entry exists) and returns its status.
func (w *WComm) Probe(src, tag int) (mpi.Status, error) {
	l := w.l
	if err := l.checkControl(); err != nil {
		return mpi.Status{}, err
	}
	if l.mode == ModeRestore {
		if e := l.lateReg.PeekMatch(w.c.Ctx(), src, tag); e != nil && e.Kind == LateData {
			return mpi.Status{Source: int(e.Sig.Src), Tag: int(e.Sig.Tag), Bytes: len(e.Data)}, nil
		}
	}
	st, err := w.c.Probe(src, tag)
	if err != nil {
		return st, err
	}
	st.Bytes -= l.codec.Width()
	return st, nil
}

// Iprobe polls for a matching message without blocking.
func (w *WComm) Iprobe(src, tag int) (mpi.Status, bool, error) {
	l := w.l
	if err := l.checkControl(); err != nil {
		return mpi.Status{}, false, err
	}
	if l.mode == ModeRestore {
		if e := l.lateReg.PeekMatch(w.c.Ctx(), src, tag); e != nil && e.Kind == LateData {
			return mpi.Status{Source: int(e.Sig.Src), Tag: int(e.Sig.Tag), Bytes: len(e.Data)}, true, nil
		}
	}
	st, found, err := w.c.Iprobe(src, tag)
	if err != nil || !found {
		return st, found, err
	}
	st.Bytes -= l.codec.Width()
	return st, true, nil
}

// --- Non-blocking communication (paper Section 4.1) ---

// Isend starts a non-blocking send and returns a request handle from the
// indirection table. The send protocol runs at initiation: "non-blocking
// send operations execute the send protocol described in Section 3".
func (w *WComm) Isend(buf []byte, count int, dt *mpi.Datatype, dest, tag int) (int, error) {
	if err := checkWrappedTag(tag); err != nil {
		return 0, err
	}
	packed, err := dt.Pack(buf, count)
	if err != nil {
		return 0, err
	}
	if err := w.l.sendUser(w.c, packed, dest, tag, false); err != nil {
		return 0, err
	}
	e := w.l.reqs.New(&ReqEntry{
		IsRecv:    false,
		Ctx:       w.c.Ctx(),
		Src:       int32(dest),
		Tag:       int32(tag),
		BornEpoch: w.l.epoch,
		Done:      true,
		Status:    mpi.Status{Source: dest, Tag: tag, Bytes: count * dt.Size()},
		comm:      w.c,
	})
	return e.ID, nil
}

// Irecv posts a non-blocking receive and returns a request handle. During
// recovery the Late-Message-Registry is consulted: a logged late message
// completes the request immediately from the log; a logged signature pins
// the wildcard before the real receive is posted.
func (w *WComm) Irecv(buf []byte, count int, dt *mpi.Datatype, src, tag int) (int, error) {
	l := w.l
	if l.err != nil {
		return 0, l.err
	}
	if err := l.checkControl(); err != nil {
		return 0, err
	}
	capBytes := count * dt.Size()
	typeH, _ := l.types.HandleFor(dt)
	e := l.reqs.New(&ReqEntry{
		IsRecv:    true,
		Ctx:       w.c.Ctx(),
		Src:       int32(src),
		Tag:       int32(tag),
		BytesCap:  capBytes,
		TypeH:     typeH,
		BornEpoch: l.epoch,
		buf:       buf,
		dt:        dt,
		count:     count,
		comm:      w.c,
		wildcard:  src == mpi.AnySource || tag == mpi.AnyTag,
	})
	postSrc, postTag := src, tag
	if l.mode == ModeRestore {
		if le := l.lateReg.TakeMatch(w.c.Ctx(), src, tag); le != nil {
			if le.Kind == LateData {
				if err := deliverPayload(le.Data, buf, dt); err != nil {
					return 0, err
				}
				e.Done = true
				e.Status = mpi.Status{Source: int(le.Sig.Src), Tag: int(le.Sig.Tag), Bytes: len(le.Data)}
				e.CompletedBy = cbLate
				e.LateSeq = le.Seq
				l.stats.ReplayedLate++
				l.maybeFinishRestore()
				return e.ID, nil
			}
			postSrc, postTag = int(le.Sig.Src), int(le.Sig.Tag)
			e.Pinned, e.PinSrc, e.PinTag = true, le.Sig.Src, le.Sig.Tag
			l.stats.PinnedWildcards++
			l.maybeFinishRestore()
		}
	}
	e.staging = make([]byte, l.codec.Width()+capBytes)
	req, err := w.c.IrecvPacked(e.staging, postSrc, postTag)
	if err != nil {
		return 0, err
	}
	e.mpiReq = req
	return e.ID, nil
}

// deliverPayload unpacks a packed payload into an application buffer.
func deliverPayload(payload, buf []byte, dt *mpi.Datatype) error {
	if dt == nil || dt.Size() == 0 {
		return nil
	}
	n := len(payload) / dt.Size()
	_, err := dt.Unpack(payload, buf, n)
	return err
}

// ReattachRecvBuffer re-associates an application buffer with a restored
// crossing request. C3 restores heap objects to their original addresses so
// the pointers in its request table stay valid; Go cannot pin addresses, so
// requests that crossed the recovery line and were not re-posted by the
// re-executed prologue must be given their buffer again before Wait/Test.
func (l *Layer) ReattachRecvBuffer(id int, buf []byte, count int, dt *mpi.Datatype) error {
	e, ok := l.reqs.Get(id)
	if !ok {
		return fmt.Errorf("ckpt: reattach: unknown request %d", id)
	}
	if !e.IsRecv {
		return fmt.Errorf("ckpt: reattach: request %d is a send", id)
	}
	e.buf = buf
	e.dt = dt
	e.count = count
	return nil
}

// Wait blocks until the request completes and releases its table entry
// (the deallocation is deferred while a checkpoint is in progress).
func (w *WComm) Wait(id int) (mpi.Status, error) { return w.l.waitReq(id) }

// Wait is the layer-level wait, usable with requests from any wrapped
// communicator.
func (l *Layer) Wait(id int) (mpi.Status, error) { return l.waitReq(id) }

func (l *Layer) waitReq(id int) (mpi.Status, error) {
	if l.err != nil {
		return mpi.Status{}, l.err
	}
	if err := l.checkControl(); err != nil {
		return mpi.Status{}, err
	}
	e, ok := l.reqs.Get(id)
	if !ok {
		return mpi.Status{}, fmt.Errorf("ckpt: wait on unknown request %d", id)
	}
	if e.Done {
		st := e.Status
		l.reqs.Release(id, l.inPeriod())
		return st, nil
	}
	if e.restored && e.CompletedBy == cbLate {
		st, err := l.replayLateCompletion(e)
		if err != nil {
			return st, err
		}
		l.reqs.Release(id, l.inPeriod())
		return st, nil
	}
	if e.mpiReq == nil {
		return mpi.Status{}, l.fatal(fmt.Errorf("ckpt: request %d has no underlying receive", id))
	}
	st, err := e.mpiReq.Wait()
	if err != nil {
		return mpi.Status{}, err
	}
	if err := l.completeRecvEntry(e, st); err != nil {
		return e.Status, err
	}
	ust := e.Status
	l.reqs.Release(id, l.inPeriod())
	return ust, nil
}

// replayLateCompletion delivers a restored request's payload from the log.
func (l *Layer) replayLateCompletion(e *ReqEntry) (mpi.Status, error) {
	le := e.replay
	if le == nil {
		return mpi.Status{}, l.fatal(fmt.Errorf("ckpt: request %d: late completion has no reserved log entry", e.ID))
	}
	if e.buf == nil {
		return mpi.Status{}, fmt.Errorf("ckpt: request %d: crossing request needs ReattachRecvBuffer before Wait", e.ID)
	}
	if err := deliverPayload(le.Data, e.buf, e.dt); err != nil {
		return mpi.Status{}, err
	}
	e.Done = true
	e.Status = mpi.Status{Source: int(le.Sig.Src), Tag: int(le.Sig.Tag), Bytes: len(le.Data)}
	l.stats.ReplayedLate++
	l.maybeFinishRestore()
	return e.Status, nil
}

// completeRecvEntry finishes a real non-blocking receive: strip the header,
// classify, record the completion kind in the table entry ("during the
// logging phase, we mark the type of message matching the posted request"),
// pin wildcard completions for replay, and unpack into the app buffer.
func (l *Layer) completeRecvEntry(e *ReqEntry, st mpi.Status) error {
	res, err := l.finishRecv(e.comm, st, e.staging, false, false)
	if err != nil {
		return err
	}
	e.Done = true
	e.Status = res.status
	if l.inPeriod() {
		switch res.class {
		case ClassIntra:
			e.CompletedBy = cbIntra
			if l.mode == ModeNonDetLog && e.wildcard && !res.senderStopped && !e.Pinned {
				// Record the completing signature in the entry itself (not
				// the registry FIFO) so recovery re-posts the request
				// restricted to the original match.
				e.Pinned, e.PinSrc, e.PinTag = true, int32(res.status.Source), int32(res.status.Tag)
			}
		case ClassEarly:
			e.CompletedBy = cbEarly
		case ClassLate:
			e.CompletedBy = cbLate
			e.LateSeq = res.lateSeq
		}
	} else {
		e.CompletedBy = cbAtLine
	}
	if e.buf != nil && e.dt != nil {
		if err := deliverPayload(res.payload, e.buf, e.dt); err != nil {
			return err
		}
	}
	// Run protocol transitions only now that the completion kind is
	// recorded in the table entry: if this receive was the last expected
	// late message, the transition commits the checkpoint and serializes
	// the request table, which must see CompletedBy/LateSeq.
	return l.applyTransitions()
}

// Test progresses the request without blocking. During recovery, the
// recorded number of unsuccessful Test calls is replayed first, and once
// the counter is exhausted a Test on a request that originally completed
// during the logging phase is substituted with a Wait, "ensuring the Test
// completes as in the original execution" (Section 4.1).
func (w *WComm) Test(id int) (mpi.Status, bool, error) { return w.l.testReq(id) }

// Test is the layer-level test.
func (l *Layer) Test(id int) (mpi.Status, bool, error) { return l.testReq(id) }

func (l *Layer) testReq(id int) (mpi.Status, bool, error) {
	if l.err != nil {
		return mpi.Status{}, false, l.err
	}
	if err := l.checkControl(); err != nil {
		return mpi.Status{}, false, err
	}
	e, ok := l.reqs.Get(id)
	if !ok {
		return mpi.Status{}, false, fmt.Errorf("ckpt: test on unknown request %d", id)
	}
	if e.ReplayFails > 0 {
		e.ReplayFails--
		return mpi.Status{}, false, nil
	}
	if e.Done {
		st := e.Status
		l.reqs.Release(id, l.inPeriod())
		return st, true, nil
	}
	if e.restored && e.CompletedBy != cbNone {
		// The original Test at this point succeeded; substitute a Wait.
		// "This replacement of Test calls with Wait calls can never lead to
		// deadlock, since the Test completed during the original execution."
		st, err := l.waitReq(id)
		return st, err == nil, err
	}
	if e.mpiReq == nil {
		return mpi.Status{}, false, l.fatal(fmt.Errorf("ckpt: request %d has no underlying receive", id))
	}
	st, done, err := e.mpiReq.Test()
	if err != nil {
		return mpi.Status{}, false, err
	}
	if !done {
		if l.inPeriod() {
			e.TestFails++
		}
		return mpi.Status{}, false, nil
	}
	if err := l.completeRecvEntry(e, st); err != nil {
		return e.Status, true, err
	}
	ust := e.Status
	l.reqs.Release(id, l.inPeriod())
	return ust, true, nil
}

// Waitall waits for every request in order.
func (w *WComm) Waitall(ids []int) ([]mpi.Status, error) {
	sts := make([]mpi.Status, len(ids))
	for i, id := range ids {
		st, err := w.l.waitReq(id)
		if err != nil {
			return sts, err
		}
		sts[i] = st
	}
	return sts, nil
}

// Waitany blocks until one of the requests completes, returning its index
// in ids. During non-deterministic logging the chosen request is recorded;
// during recovery the recorded choice is replayed ("this counter is used to
// log the index or indices of MPI_Wait_any ... and to replay these routines
// during recovery").
func (w *WComm) Waitany(ids []int) (int, mpi.Status, error) {
	l := w.l
	if err := l.checkControl(); err != nil {
		return -1, mpi.Status{}, err
	}
	if replayIDs, ok := l.popAnyReplayFor(ids); ok {
		id := replayIDs[0]
		idx := indexOf(ids, id)
		if idx < 0 {
			return -1, mpi.Status{}, l.fatal(fmt.Errorf("ckpt: waitany replay chose request %d, not among the waited set", id))
		}
		st, err := l.waitReq(id)
		return idx, st, err
	}
	for {
		for idx, id := range ids {
			e, ok := l.reqs.Get(id)
			if !ok {
				continue
			}
			ready := e.Done || (e.restored && e.CompletedBy == cbLate && e.ReplayFails == 0)
			if !ready && e.mpiReq != nil && e.mpiReq.Done() {
				ready = true
			}
			if ready {
				st, err := l.waitReq(id)
				if err == nil && l.inPeriod() && l.mode == ModeNonDetLog {
					l.reqs.LogAnyCompletion([]int{id})
				}
				return idx, st, err
			}
		}
		// Progress the engine: wait for any underlying request to flip.
		var reqs []*mpi.Request
		for _, id := range ids {
			if e, ok := l.reqs.Get(id); ok && e.mpiReq != nil && !e.Done {
				reqs = append(reqs, e.mpiReq)
			}
		}
		if len(reqs) == 0 {
			return -1, mpi.Status{}, fmt.Errorf("ckpt: waitany with no active requests")
		}
		if _, _, err := mpi.Waitany(reqs); err != nil {
			return -1, mpi.Status{}, err
		}
	}
}

// popAnyReplayFor pops the next Waitany/Waitsome replay record if one is
// pending and intersects the waited set.
func (l *Layer) popAnyReplayFor(ids []int) ([]int, bool) {
	if !l.reqs.AnyReplayPending() {
		return nil, false
	}
	rec, _ := l.reqs.PopAnyReplay()
	_ = ids
	return rec, true
}

func indexOf(ids []int, id int) int {
	for i, v := range ids {
		if v == id {
			return i
		}
	}
	return -1
}

// --- Restored request-table merging ---

// restoreRequests merges a checkpointed request table into the live one:
// requests the re-executed prologue already re-created are verified and
// adopted; missing crossing requests are recreated ("all requests that have
// not been completed by a late message are recreated before the program
// resumes execution"); requests allocated after the line are implicitly
// discarded because the ID watermark rolls back.
func (l *Layer) restoreRequests(data []byte) error {
	entries, idAtLine, anyReplay, err := deserializeReqTable(data)
	if err != nil {
		return err
	}
	l.reqs.anyReplay = anyReplay
	for i := range entries {
		re := &entries[i]
		if existing, ok := l.reqs.Get(re.ID); ok {
			if err := l.adoptRestored(existing, re); err != nil {
				return err
			}
			continue
		}
		e := &ReqEntry{
			ID:          re.ID,
			IsRecv:      re.IsRecv,
			Ctx:         re.Ctx,
			Src:         re.Src,
			Tag:         re.Tag,
			BytesCap:    re.BytesCap,
			TypeH:       re.TypeH,
			BornEpoch:   re.BornEpoch,
			Pinned:      re.Pinned,
			PinSrc:      re.PinSrc,
			PinTag:      re.PinTag,
			Done:        re.Done,
			Status:      re.Status,
			ReplayFails: re.ReplayFails,
			CompletedBy: re.CompletedBy,
			LateSeq:     re.LateSeq,
			restored:    true,
		}
		l.reqs.entries[e.ID] = e
		l.reqs.order = append(l.reqs.order, e.ID)
		if e.Done || !e.IsRecv {
			e.Done = true
			continue
		}
		switch e.CompletedBy {
		case cbLate:
			le := l.lateReg.TakeSeq(e.LateSeq)
			if le == nil {
				return fmt.Errorf("ckpt: request %d: late log entry %d missing", e.ID, e.LateSeq)
			}
			e.replay = le
		default:
			if err := l.repostRestored(e); err != nil {
				return err
			}
		}
	}
	if l.reqs.nextID > idAtLine {
		return fmt.Errorf("ckpt: re-executed prologue created %d requests, original had %d at the line",
			l.reqs.nextID-1, idAtLine-1)
	}
	l.reqs.nextID = idAtLine
	return nil
}

// adoptRestored merges a checkpointed entry into one the restarted prologue
// already re-created, keeping the prologue's buffer binding.
func (l *Layer) adoptRestored(e *ReqEntry, re *restoredEntry) error {
	if e.IsRecv != re.IsRecv || e.Ctx != re.Ctx {
		return fmt.Errorf("ckpt: request %d diverged between runs (recv=%v ctx=%d vs recv=%v ctx=%d)",
			e.ID, e.IsRecv, e.Ctx, re.IsRecv, re.Ctx)
	}
	e.ReplayFails = re.ReplayFails
	e.BornEpoch = re.BornEpoch
	if !e.IsRecv {
		return nil
	}
	switch {
	case re.Done:
		// Completed before the line: the data is already in the restored
		// application state. Cancel the freshly posted receive so a re-sent
		// message cannot match it.
		if e.mpiReq != nil {
			e.mpiReq.Cancel()
			e.mpiReq = nil
		}
		e.Done = true
		e.Status = re.Status
		e.CompletedBy = cbAtLine
		e.restored = true
	case re.CompletedBy == cbLate:
		if e.mpiReq != nil {
			e.mpiReq.Cancel()
			e.mpiReq = nil
		}
		le := l.lateReg.TakeSeq(re.LateSeq)
		if le == nil {
			return fmt.Errorf("ckpt: request %d: late log entry %d missing", e.ID, re.LateSeq)
		}
		e.replay = le
		e.CompletedBy = cbLate
		e.LateSeq = re.LateSeq
		e.restored = true
	default:
		e.CompletedBy = re.CompletedBy
		e.restored = true
		if re.Pinned && !e.Pinned {
			// Re-post restricted to the original wildcard match.
			if e.mpiReq != nil {
				e.mpiReq.Cancel()
			}
			e.Pinned, e.PinSrc, e.PinTag = true, re.PinSrc, re.PinTag
			ce, ok := l.comms.ByCtx(e.Ctx)
			if !ok || ce.Comm == nil {
				return fmt.Errorf("ckpt: request %d: communicator ctx %d not restored", e.ID, e.Ctx)
			}
			req, err := ce.Comm.IrecvPacked(e.staging, int(e.PinSrc), int(e.PinTag))
			if err != nil {
				return err
			}
			e.mpiReq = req
		}
	}
	return nil
}

// repostRestored posts the underlying receive for a restored crossing
// request that the prologue did not re-create. The payload lands in a
// staging buffer; the application must call ReattachRecvBuffer before
// waiting on it.
func (l *Layer) repostRestored(e *ReqEntry) error {
	ce, ok := l.comms.ByCtx(e.Ctx)
	if !ok || ce.Comm == nil {
		return fmt.Errorf("ckpt: request %d: communicator ctx %d not restored", e.ID, e.Ctx)
	}
	e.comm = ce.Comm
	e.wildcard = int(e.Src) == mpi.AnySource || int(e.Tag) == mpi.AnyTag
	src, tag := int(e.Src), int(e.Tag)
	if e.Pinned {
		src, tag = int(e.PinSrc), int(e.PinTag)
	}
	e.staging = make([]byte, l.codec.Width()+e.BytesCap)
	req, err := ce.Comm.IrecvPacked(e.staging, src, tag)
	if err != nil {
		return err
	}
	e.mpiReq = req
	return nil
}

// --- Datatype and reduction-op handle API ---

// TypeContiguous creates a contiguous datatype handle.
func (l *Layer) TypeContiguous(count, base int) (int, error) { return l.types.Contiguous(count, base) }

// TypeVector creates a vector datatype handle.
func (l *Layer) TypeVector(count, blockLen, stride, base int) (int, error) {
	return l.types.Vector(count, blockLen, stride, base)
}

// TypeIndexed creates an indexed datatype handle.
func (l *Layer) TypeIndexed(blockLens, displs []int, base int) (int, error) {
	return l.types.Indexed(blockLens, displs, base)
}

// TypeStruct creates a struct datatype handle.
func (l *Layer) TypeStruct(blockLens, byteDispls []int, children []int) (int, error) {
	return l.types.Struct(blockLens, byteDispls, children)
}

// TypeFree releases a datatype handle (the recipe row survives while other
// types depend on it).
func (l *Layer) TypeFree(handle int) error { return l.types.Free(handle) }

// Type returns the native datatype for a handle.
func (l *Layer) Type(handle int) (*mpi.Datatype, error) {
	e, ok := l.types.Get(handle)
	if !ok || e.DT == nil {
		return nil, fmt.Errorf("ckpt: no datatype with handle %d", handle)
	}
	return e.DT, nil
}

// RegisterOp registers a user-defined reduction operation; it must be
// re-registered (same order) by the application prologue before Restore.
func (l *Layer) RegisterOp(op *mpi.Op) int { return l.ops.Register(op) }

// Op returns the reduction operation for a handle.
func (l *Layer) Op(handle int) (*mpi.Op, error) {
	op, ok := l.ops.Get(handle)
	if !ok {
		return nil, fmt.Errorf("ckpt: no reduction op with handle %d", handle)
	}
	return op, nil
}
