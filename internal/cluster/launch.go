package cluster

// The multi-process launcher: spawns one worker process per rank (the
// workers call RunNode) and coordinates over the workers' stdin and stdout
// pipes. Two coordination modes exist:
//
//   - Legacy (default): the launcher is an omniscient oracle. It injects
//     failures as real SIGKILLs via the victim protocol, aborts the
//     survivors' attempt when a worker dies, re-executes the dead rank,
//     and starts the next attempt in restore mode.
//
//   - Self-healing (LaunchConfig.SelfHeal): the launcher is a dumb
//     respawner exposing exactly one recovery primitive — spawn(rank). It
//     broadcasts the initial run, then only reacts: a "respawn r" request
//     from the survivors' elected coordinator re-executes rank r (the new
//     process is told to "join" and adopts the agreed epoch from its
//     peers); everything else — detection, agreement, commit interruption,
//     restore-line negotiation, attempt sequencing — happens among the
//     workers themselves (internal/detect). The launcher can still play
//     the role of an outside operator: ExternalKill delivers an
//     uncoordinated SIGKILL mid-run, the headline self-healing scenario.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// LaunchConfig configures a multi-process run.
type LaunchConfig struct {
	// Ranks is the compute world size (one application process per rank).
	Ranks int
	// Capacity is the total pre-allocated slot count (0: Ranks). Slots in
	// [Ranks, Capacity) are spare storage-member slots: no process runs
	// there at launch, but an ops-plane join request ("wantjoin" from a
	// worker) spawns one, which is then admitted by a membership epoch
	// agreement among the running workers. Requires SelfHeal.
	Capacity int
	// Exe is the worker executable; empty means this executable
	// (os.Executable), the re-exec idiom c3node uses.
	Exe string
	// Args builds the argument list for one rank's worker process; the
	// launcher passes the freshly allocated MPI-plane and replication-plane
	// address lists. Workers must speak the RunNode pipe protocol.
	Args func(rank int, mpiAddrs, replAddrs []string) []string
	// Env is extra environment for the workers, appended to os.Environ().
	Env []string
	// Disk, when true, allocates no replication addresses (workers are
	// expected to share a DiskStore via Args/StorePath).
	Disk bool
	// SelfHeal runs the launcher as a dumb respawner: recovery is
	// coordinated by the workers (which must run with NodeConfig.SelfHeal).
	SelfHeal bool
	// ExternalKill, in self-healing mode, makes the launcher act as an
	// outside operator: it SIGKILLs the configured rank mid-run with no
	// failure spec inside the worker and no recovery coordination — the
	// survivors must detect and recover on their own.
	ExternalKill *ExternalKillSpec
	// ExternalPartition, in self-healing mode, severs a rank group from
	// the rest mid-run and heals it after a delay (the part/heal pipe
	// commands on every worker). The workers' quorum logic must sort out
	// who may commit.
	ExternalPartition *ExternalPartitionSpec
	// MaxRestarts bounds recovery cycles (default 3).
	MaxRestarts int
	// Timeout bounds the whole run (default 2 minutes).
	Timeout time.Duration
	// Stderr receives the workers' stderr (default os.Stderr).
	Stderr io.Writer
	// Log, when non-nil, receives launcher progress lines.
	Log func(format string, args ...any)
}

// LaunchResult reports a completed multi-process run.
type LaunchResult struct {
	// Attempts is the number of world launches (1 = no failures).
	Attempts int
	// Restarts is the number of worker processes re-executed after death.
	Restarts int
	// Joins counts membership admissions reported by joining workers
	// ("joined" events from spare slots); Drains counts graceful membership
	// removals ("drained" events). Both zero in a fixed world.
	Joins  int
	Drains int
	// Results holds each rank's reported result string from the successful
	// attempt.
	Results map[int]string
	// Stats holds each rank's reported store statistics line (for the
	// diskless store: "reassemblies=<n>", counting checkpoints rebuilt from
	// peer fragments over the wire; in self-healing mode additionally
	// detections=, epochs=, suspect_us=, agree_us= and restore_us=).
	Stats map[int]string
	// KillTime is when the external SIGKILL was delivered (zero if none).
	// Compared against the workers' reported suspect_us timestamps it
	// yields the end-to-end detection latency (same host, same clock).
	KillTime time.Time
	// PartTime and HealTime bracket the external partition (zero if none).
	PartTime, HealTime time.Time
	// SplitCkpts counts the checkpoint commits each rank reported while
	// the partition was active — the fencing contract says the minority
	// side's entries must be zero.
	SplitCkpts map[int]int
}

// ExternalKillSpec schedules the launcher-as-operator SIGKILL.
type ExternalKillSpec struct {
	// Rank is the process to kill.
	Rank int
	// AfterCheckpoints delivers the kill once the rank has reported this
	// many committed checkpoints (0: immediately after the run starts, i.e.
	// before the rank's first committed line — the from-scratch case).
	AfterCheckpoints int
	// AfterJoins additionally delays the kill until this many spare-slot
	// membership admissions ("joined" events) have been observed — the
	// elastic demo's "SIGKILL in the resized world" (0: no wait).
	AfterJoins int
}

// launchEvent is one line from a worker, or its death.
type launchEvent struct {
	rank   int
	proc   *workerProc // the worker incarnation that produced the event
	fields []string    // fields[0] is the event kind; "exit" is synthesized
}

type workerProc struct {
	rank   int
	cmd    *exec.Cmd
	stdin  io.Writer
	dead   bool
	exited chan struct{} // closed once the process has been reaped
}

func (w *workerProc) command(format string, args ...any) {
	fmt.Fprintf(w.stdin, format+"\n", args...)
}

type launcher struct {
	cfg       LaunchConfig
	mpiAddrs  []string
	replAddrs []string
	workers   []*workerProc
	events    chan launchEvent
	deadline  time.Time
}

func (l *launcher) logf(format string, args ...any) {
	if l.cfg.Log != nil {
		l.cfg.Log(format, args...)
	}
}

// freeAddrs reserves k distinct localhost TCP addresses by binding and
// releasing ephemeral ports. The tiny reuse race is acceptable for a
// launcher that immediately hands the addresses to its children.
func freeAddrs(k int) ([]string, error) {
	addrs := make([]string, 0, k)
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs = append(addrs, ln.Addr().String())
		_ = ln.Close() // probe listener: the address is all we wanted
	}
	return addrs, nil
}

// Launch runs a multi-process world to completion.
func Launch(cfg LaunchConfig) (*LaunchResult, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("cluster: launch needs a positive rank count")
	}
	if cfg.Args == nil {
		return nil, fmt.Errorf("cluster: launch needs an Args builder")
	}
	if cfg.Exe == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("cluster: resolve executable: %w", err)
		}
		cfg.Exe = exe
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}

	if cfg.Capacity == 0 {
		cfg.Capacity = cfg.Ranks
	}
	if cfg.Capacity < cfg.Ranks {
		return nil, fmt.Errorf("cluster: capacity %d below the %d-rank compute world", cfg.Capacity, cfg.Ranks)
	}
	if cfg.Capacity > cfg.Ranks && !cfg.SelfHeal {
		return nil, fmt.Errorf("cluster: spare slots (capacity %d > %d ranks) require SelfHeal (membership agreements live in the workers)", cfg.Capacity, cfg.Ranks)
	}

	// The MPI plane spans only the fixed compute world; the replication
	// plane (store + detector) spans every slot membership can grow into.
	mpiAddrs, err := freeAddrs(cfg.Ranks)
	if err != nil {
		return nil, err
	}
	var replAddrs []string
	if !cfg.Disk {
		if replAddrs, err = freeAddrs(cfg.Capacity); err != nil {
			return nil, err
		}
	}
	l := &launcher{
		cfg:       cfg,
		mpiAddrs:  mpiAddrs,
		replAddrs: replAddrs,
		workers:   make([]*workerProc, cfg.Capacity),
		events:    make(chan launchEvent, 64),
		deadline:  time.Now().Add(cfg.Timeout),
	}
	defer l.cleanup()

	if cfg.ExternalKill != nil {
		if !cfg.SelfHeal {
			return nil, fmt.Errorf("cluster: ExternalKill requires SelfHeal (the legacy launcher would never recover an uncoordinated kill)")
		}
		if r := cfg.ExternalKill.Rank; r < 0 || r >= cfg.Ranks {
			return nil, fmt.Errorf("cluster: ExternalKill rank %d out of range [0,%d)", r, cfg.Ranks)
		}
	}
	if ep := cfg.ExternalPartition; ep != nil {
		if !cfg.SelfHeal {
			return nil, fmt.Errorf("cluster: ExternalPartition requires SelfHeal (quorum fencing lives in the workers' detectors)")
		}
		if len(ep.GroupA) == 0 || len(ep.GroupA) >= cfg.Ranks {
			return nil, fmt.Errorf("cluster: ExternalPartition group %v must be a proper non-empty subset of %d ranks", ep.GroupA, cfg.Ranks)
		}
		for _, r := range ep.GroupA {
			if r < 0 || r >= cfg.Ranks {
				return nil, fmt.Errorf("cluster: ExternalPartition rank %d out of range [0,%d)", r, cfg.Ranks)
			}
		}
		if ep.HealAfter <= 0 {
			return nil, fmt.Errorf("cluster: ExternalPartition needs a positive HealAfter (a never-healing split cannot converge)")
		}
	}

	for r := 0; r < cfg.Ranks; r++ {
		if err := l.spawn(r); err != nil {
			return nil, err
		}
	}
	if err := l.awaitEach("ready", l.allRanks()); err != nil {
		return nil, err
	}
	if cfg.SelfHeal {
		return l.driveSelfHeal()
	}
	return l.drive()
}

func (l *launcher) allRanks() map[int]bool {
	m := make(map[int]bool, l.cfg.Ranks)
	for r := 0; r < l.cfg.Ranks; r++ {
		m[r] = true
	}
	return m
}

// spawn starts (or re-executes) one rank's worker process.
func (l *launcher) spawn(rank int) error {
	cmd := exec.Command(l.cfg.Exe, l.cfg.Args(rank, l.mpiAddrs, l.replAddrs)...)
	cmd.Env = append(os.Environ(), l.cfg.Env...)
	cmd.Stderr = l.cfg.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("cluster: start rank %d worker: %w", rank, err)
	}
	w := &workerProc{rank: rank, cmd: cmd, stdin: stdin, exited: make(chan struct{})}
	l.workers[rank] = w
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 64*1024), 64*1024)
		for sc.Scan() {
			if f := strings.Fields(sc.Text()); len(f) > 0 {
				l.events <- launchEvent{rank: rank, proc: w, fields: f}
			}
		}
		// Pipe closed: the process exited (or was SIGKILLed).
		_ = cmd.Wait()
		close(w.exited)
		l.events <- launchEvent{rank: rank, proc: w, fields: []string{"exit"}}
	}()
	l.logf("rank %d: worker pid %d", rank, cmd.Process.Pid)
	return nil
}

func (l *launcher) cleanup() {
	for _, w := range l.workers {
		if w == nil || w.dead {
			continue
		}
		w.command("quit")
	}
	grace := time.Now().Add(2 * time.Second)
	for _, w := range l.workers {
		if w == nil || w.dead {
			continue
		}
		select {
		case <-w.exited:
		case <-time.After(time.Until(grace)):
			_ = w.cmd.Process.Kill()
			<-w.exited
		}
	}
}

// nextEvent waits for the next worker event, killing the run at the global
// deadline.
func (l *launcher) nextEvent() (launchEvent, error) {
	select {
	case ev := <-l.events:
		return ev, nil
	case <-time.After(time.Until(l.deadline)):
		return launchEvent{}, fmt.Errorf("cluster: launch timed out after %v", l.cfg.Timeout)
	}
}

// handleCommon processes events that can arrive in any phase. It reports
// whether the event was consumed.
func (l *launcher) handleCommon(ev launchEvent) (consumed bool, err error) {
	switch ev.fields[0] {
	case "victim":
		// The failure spec fired inside the worker, which is now frozen at
		// the exact protocol point: deliver the real SIGKILL.
		w := l.workers[ev.rank]
		l.logf("rank %d: victim — delivering SIGKILL to pid %d", ev.rank, w.cmd.Process.Pid)
		if err := w.cmd.Process.Kill(); err != nil {
			return true, fmt.Errorf("cluster: SIGKILL rank %d: %w", ev.rank, err)
		}
		return true, nil
	case "error":
		return true, fmt.Errorf("cluster: rank %d: %s", ev.rank, strings.Join(ev.fields[1:], " "))
	}
	return false, nil
}

// awaitEach consumes events until every rank in want has produced the
// given event kind.
func (l *launcher) awaitEach(kind string, want map[int]bool) error {
	for len(want) > 0 {
		ev, err := l.nextEvent()
		if err != nil {
			return err
		}
		if consumed, err := l.handleCommon(ev); err != nil {
			return err
		} else if consumed {
			continue
		}
		if ev.fields[0] == kind && want[ev.rank] {
			delete(want, ev.rank)
			continue
		}
		if ev.fields[0] == "exit" {
			return fmt.Errorf("cluster: rank %d worker died while awaiting %q", ev.rank, kind)
		}
	}
	return nil
}

// drive runs attempts until one completes on every rank, recovering from
// worker deaths in between.
func (l *launcher) drive() (*LaunchResult, error) {
	res := &LaunchResult{Results: make(map[int]string), Stats: make(map[int]string)}
	restore := 0
	for attempt := 0; ; attempt++ {
		res.Attempts++
		l.logf("attempt %d (restore=%d)", attempt, restore)
		for _, w := range l.workers {
			w.command("run %d %d", attempt, restore)
		}
		done := make(map[int]string)
		var died []int
		for len(done) < l.cfg.Ranks && len(died) == 0 {
			ev, err := l.nextEvent()
			if err != nil {
				return res, err
			}
			if consumed, err := l.handleCommon(ev); err != nil {
				return res, err
			} else if consumed {
				continue
			}
			switch ev.fields[0] {
			case "done":
				if len(ev.fields) >= 2 && ev.fields[1] == strconv.Itoa(attempt) {
					result := ""
					if len(ev.fields) >= 3 {
						result = ev.fields[2]
					}
					done[ev.rank] = result
				}
			case "stat":
				if len(ev.fields) >= 3 && ev.fields[1] == strconv.Itoa(attempt) {
					res.Stats[ev.rank] = strings.Join(ev.fields[2:], " ")
				}
			case "exit":
				if ev.proc != l.workers[ev.rank] {
					continue // a dead predecessor's event, not the current worker
				}
				l.workers[ev.rank].dead = true
				died = append(died, ev.rank)
				l.logf("rank %d: worker died", ev.rank)
			case "down":
				// The rank observed the world going down; recovery follows
				// once the death event arrives.
			}
		}
		if len(done) == l.cfg.Ranks {
			res.Results = done
			return res, nil
		}

		// Recovery: tear the survivors' attempt down, re-exec the dead.
		res.Restarts += len(died)
		if res.Restarts > l.cfg.MaxRestarts {
			return res, fmt.Errorf("cluster: %d worker deaths exceed MaxRestarts=%d", res.Restarts, l.cfg.MaxRestarts)
		}
		survivors := make(map[int]bool)
		for _, w := range l.workers {
			if !w.dead {
				survivors[w.rank] = true
				w.command("abort %d", attempt)
			}
		}
		moreDied, err := l.awaitAborted(attempt, survivors)
		if err != nil {
			return res, err
		}
		for _, r := range moreDied {
			l.workers[r].dead = true
			l.logf("rank %d: worker died during abort", r)
			died = append(died, r)
		}
		res.Restarts += len(moreDied)
		if res.Restarts > l.cfg.MaxRestarts {
			return res, fmt.Errorf("cluster: %d worker deaths exceed MaxRestarts=%d", res.Restarts, l.cfg.MaxRestarts)
		}
		for _, r := range died {
			l.logf("rank %d: re-executing", r)
			if err := l.spawn(r); err != nil {
				return res, err
			}
		}
		ready := make(map[int]bool)
		for _, r := range died {
			ready[r] = true
		}
		if err := l.awaitEach("ready", ready); err != nil {
			return res, err
		}
		restore = 1
	}
}

// driveSelfHeal is the dumb-respawner event loop: broadcast the initial
// run, then only react. Recovery sequencing lives in the workers; the
// launcher's sole primitives are spawn(rank) on a coordinator's request
// and — when configured — the operator's external SIGKILL.
func (l *launcher) driveSelfHeal() (*LaunchResult, error) {
	res := &LaunchResult{Results: make(map[int]string), Stats: make(map[int]string)}
	for _, w := range l.workers[:l.cfg.Ranks] {
		w.command("run 0 0")
	}

	ek := l.cfg.ExternalKill
	killed := false
	kill := func(rank int) error {
		w := l.workers[rank]
		l.logf("rank %d: external SIGKILL to pid %d", rank, w.cmd.Process.Pid)
		res.KillTime = time.Now()
		killed = true
		return w.cmd.Process.Kill()
	}
	if ek != nil && ek.AfterCheckpoints <= 0 && ek.AfterJoins <= 0 {
		// Kill before the rank's first committed line: the from-scratch case.
		if err := kill(ek.Rank); err != nil {
			return res, err
		}
	}

	ep := l.cfg.ExternalPartition
	parted, healed := false, false
	var inGroupA map[int]bool
	if ep != nil {
		res.SplitCkpts = make(map[int]int)
		inGroupA = make(map[int]bool, len(ep.GroupA))
		for _, r := range ep.GroupA {
			inGroupA[r] = true
		}
	}
	part := func() {
		group := FormatGroup(ep.GroupA)
		l.logf("partition: severing group %s from the rest (heal in %v)", group, ep.HealAfter)
		res.PartTime = time.Now()
		parted = true
		for _, w := range l.workers {
			if w != nil && !w.dead {
				w.command("part %s", group)
			}
		}
		// The heal fires on the event loop (a synthetic event), keeping all
		// worker stdin writes on this goroutine.
		time.AfterFunc(ep.HealAfter, func() {
			l.events <- launchEvent{rank: -1, fields: []string{"heal-timer"}}
		})
	}
	if ep != nil && ep.AfterCheckpoints <= 0 {
		part()
	}

	ckpts := 0
	groupCkpts := 0
	doneAttempt := make(map[int]int)
	respawnPending := make(map[int]bool)
	for {
		ev, err := l.nextEvent()
		if err != nil {
			return res, err
		}
		switch ev.fields[0] {
		case "error":
			return res, fmt.Errorf("cluster: rank %d: %s", ev.rank, strings.Join(ev.fields[1:], " "))
		case "victim":
			// A worker froze at its own failure spec. The launcher plays
			// operator and delivers the SIGKILL, but — unlike legacy mode —
			// coordinates nothing afterwards: the survivors must notice.
			res.KillTime = time.Now()
			killed = true
			w := l.workers[ev.rank]
			l.logf("rank %d: victim — delivering SIGKILL to pid %d (self-heal: no coordination follows)", ev.rank, w.cmd.Process.Pid)
			if err := w.cmd.Process.Kill(); err != nil {
				return res, fmt.Errorf("cluster: SIGKILL rank %d: %w", ev.rank, err)
			}
		case "heal-timer":
			if parted && !healed {
				l.logf("partition: healing")
				res.HealTime = time.Now()
				healed = true
				for _, w := range l.workers {
					if w != nil && !w.dead {
						w.command("heal")
					}
				}
			}
		case "ckpt":
			if ek != nil && !killed && ev.rank == ek.Rank {
				ckpts++
				if ckpts >= ek.AfterCheckpoints && res.Joins >= ek.AfterJoins {
					if err := kill(ek.Rank); err != nil {
						return res, err
					}
				}
			}
			if ep != nil {
				if parted && !healed {
					res.SplitCkpts[ev.rank]++
				}
				if !parted && inGroupA[ev.rank] {
					groupCkpts++
					if groupCkpts >= ep.AfterCheckpoints {
						part()
					}
				}
			}
		case "respawn":
			if len(ev.fields) < 2 {
				continue
			}
			r, err := strconv.Atoi(ev.fields[1])
			if err != nil || r < 0 || r >= len(l.workers) {
				continue
			}
			if respawnPending[r] {
				continue // duplicate request (e.g. re-elected coordinator)
			}
			w := l.workers[r]
			if w == nil {
				continue // a spare slot that never hosted a process
			}
			if ep != nil && !w.dead {
				// The "dead" rank is a partition casualty that is very much
				// alive: a severed minority process the majority's agreement
				// declared dead, or (after the heal, while monitors resettle)
				// a falsely suspected rank on either side. Spawning a
				// duplicate would collide on its listen addresses; the
				// original rejoins by itself through the epoch-state exchange.
				l.logf("rank %d: skipping respawn of partition-declared-dead rank %d (still alive)", ev.rank, r)
				continue
			}
			if !w.dead {
				// The coordinator's agreement can outrun our exit event; give
				// the process a moment to be reaped before declaring the
				// request bogus (respawning a live rank would collide on its
				// listen addresses).
				select {
				case <-w.exited:
					w.dead = true
				case <-time.After(5 * time.Second):
					return res, fmt.Errorf("cluster: rank %d requested respawn of rank %d, which is still alive", ev.rank, r)
				}
			}
			res.Restarts++
			if res.Restarts > l.cfg.MaxRestarts {
				return res, fmt.Errorf("cluster: %d respawns exceed MaxRestarts=%d", res.Restarts, l.cfg.MaxRestarts)
			}
			l.logf("rank %d: respawning on rank %d's request", r, ev.rank)
			if err := l.spawn(r); err != nil {
				return res, err
			}
			respawnPending[r] = true
		case "wantjoin":
			// The ops control plane asked for a new member. Pick the slot
			// (-1: first spare not hosting a live process), spawn a worker
			// there, and send "join" once it is ready — admission itself is
			// the workers' membership epoch agreement, not ours.
			if len(ev.fields) < 2 {
				continue
			}
			slot, err := strconv.Atoi(ev.fields[1])
			if err != nil {
				continue
			}
			if slot < 0 {
				for s := l.cfg.Ranks; s < len(l.workers); s++ {
					if (l.workers[s] == nil || l.workers[s].dead) && !respawnPending[s] {
						slot = s
						break
					}
				}
			}
			if slot < l.cfg.Ranks || slot >= len(l.workers) {
				l.logf("rank %d: wantjoin %s: no spare slot available", ev.rank, ev.fields[1])
				continue
			}
			if w := l.workers[slot]; (w != nil && !w.dead) || respawnPending[slot] {
				l.logf("rank %d: wantjoin %d: slot already hosts a process", ev.rank, slot)
				continue
			}
			l.logf("rank %d: spawning storage member on spare slot %d", ev.rank, slot)
			if err := l.spawn(slot); err != nil {
				return res, err
			}
			respawnPending[slot] = true
		case "joined":
			if ev.rank >= l.cfg.Ranks {
				res.Joins++ // spare slot admitted by a membership epoch
			}
			l.logf("rank %d: joined (%s)", ev.rank, strings.Join(ev.fields[1:], " "))
			if ek != nil && !killed && ckpts >= ek.AfterCheckpoints && ek.AfterJoins > 0 && res.Joins >= ek.AfterJoins {
				// The join gate was the last condition still pending: the
				// operator's kill lands in the freshly resized world.
				if err := kill(ek.Rank); err != nil {
					return res, err
				}
			}
		case "drained":
			// A graceful membership shrink removed this worker; it exits by
			// itself and the exit event marks it dead.
			res.Drains++
			l.logf("rank %d: drained (membership shrink)", ev.rank)
		case "ready":
			if respawnPending[ev.rank] {
				delete(respawnPending, ev.rank)
				l.workers[ev.rank].command("join")
			}
		case "stat":
			if len(ev.fields) >= 3 {
				res.Stats[ev.rank] = strings.Join(ev.fields[2:], " ")
			}
		case "done":
			if len(ev.fields) < 2 {
				continue
			}
			a, err := strconv.Atoi(ev.fields[1])
			if err != nil {
				continue
			}
			doneAttempt[ev.rank] = a
			result := ""
			if len(ev.fields) >= 3 {
				result = ev.fields[2]
			}
			res.Results[ev.rank] = result
			// Complete once every rank has finished the same attempt. A rank
			// that finished an earlier attempt before a late failure re-runs
			// and reports again, so the map converges on the final attempt.
			if len(doneAttempt) == l.cfg.Ranks {
				same := true
				for _, da := range doneAttempt {
					if da != a {
						same = false
						break
					}
				}
				if same {
					res.Attempts = a + 1
					return res, nil
				}
			}
		case "exit":
			if ev.proc != l.workers[ev.rank] {
				continue // stale incarnation: its replacement already runs
			}
			l.workers[ev.rank].dead = true
			l.logf("rank %d: worker died", ev.rank)
		case "down":
			// A survivor observed the world going down; the detector drives
			// what happens next.
		}
	}
}

// awaitAborted waits for each survivor to acknowledge the abort token. A
// survivor dying during the abort is tolerated: it is reported back so
// the caller adds it to the re-exec set (MaxRestarts still bounds total
// deaths).
func (l *launcher) awaitAborted(token int, want map[int]bool) (died []int, err error) {
	tok := strconv.Itoa(token)
	for len(want) > 0 {
		ev, err := l.nextEvent()
		if err != nil {
			return died, err
		}
		if consumed, err := l.handleCommon(ev); err != nil {
			return died, err
		} else if consumed {
			continue
		}
		switch ev.fields[0] {
		case "aborted":
			if len(ev.fields) >= 2 && ev.fields[1] == tok && want[ev.rank] {
				delete(want, ev.rank)
			}
		case "exit":
			if ev.proc == l.workers[ev.rank] && want[ev.rank] {
				delete(want, ev.rank)
				died = append(died, ev.rank)
			}
		}
	}
	return died, nil
}
