package c3commiterr_test

import (
	"testing"

	"c3/internal/lint/c3commiterr"
	"c3/internal/lint/linttest"
)

// TestGoverned exercises both severity tiers on the commit path: critical
// operations (Sync, Commit, WriteSection, os.Rename) may never drop their
// error — not even via `_ =` — while cleanup calls (Close) accept an
// explicit discard or defer but not a bare statement.
func TestGoverned(t *testing.T) {
	linttest.Run(t, "internal/lint/testdata/src/commiterr", "c3/internal/stable",
		c3commiterr.Analyzer)
}

// TestUngovernedExempt: the same code outside the commit/restore packages
// is not this analyzer's business.
func TestUngovernedExempt(t *testing.T) {
	res := linttest.RunRaw(t, "internal/lint/testdata/src/commiterr", "fixture/commiterr",
		c3commiterr.Analyzer)
	if len(res.Findings) != 0 {
		t.Errorf("ungoverned package produced findings: %v", res.Findings)
	}
}
