// Quickstart: a self-checkpointing, self-restarting ring program.
//
// Four ranks pass a token around a ring, folding it into a running sum.
// Every iteration ends with a checkpoint pragma; the policy takes a
// checkpoint every 3 pragmas. A fail-stop failure is injected on rank 2
// mid-run: the whole world is torn down and restarted, recovery finds the
// last recovery line committed on all ranks, restores the registered state,
// replays logged late messages and suppresses re-sends of early ones, and
// the program finishes as if nothing had happened.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"c3"
)

func main() {
	const ranks = 4
	const iters = 9

	app := func(env c3.Env) error {
		st := env.State()
		it := st.Int("it")   // loop counter: part of the saved state
		sum := st.Int("sum") // running result

		// Restore recovers registered state from the last committed
		// recovery line when this run is a restart (no-op otherwise).
		restored, err := env.Restore()
		if err != nil {
			return err
		}
		if restored {
			fmt.Printf("rank %d: restored at iteration %d (sum=%d)\n",
				env.Rank(), it.Get(), sum.Get())
		}

		w := env.World()
		right := (env.Rank() + 1) % ranks
		left := (env.Rank() + ranks - 1) % ranks

		for it.Get() < iters {
			// Pass a token right, receive from the left.
			token := []byte{byte(env.Rank() + it.Get())}
			var in [1]byte
			if _, err := w.Sendrecv(token, 1, c3.TypeByte, right, 1,
				in[:], 1, c3.TypeByte, left, 1); err != nil {
				return err
			}
			sum.Add(int(in[0]))
			it.Add(1)

			// The checkpoint pragma: the policy decides whether a global
			// checkpoint starts here (it also joins checkpoints other
			// ranks have initiated).
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		fmt.Printf("rank %d: done, sum=%d\n", env.Rank(), sum.Get())
		return nil
	}

	res, err := c3.Run(c3.Config{
		Ranks:  ranks,
		App:    app,
		Policy: c3.Policy{EveryNthPragma: 3},
		// Kill rank 2 at its 7th pragma — after at least one recovery
		// line has committed.
		Failures: []c3.FailureSpec{{Rank: 2, AtPragma: 7}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompleted in %d attempt(s); last attempt took %v\n",
		res.Attempts, res.LastAttemptElapsed)
	for _, rs := range res.Stats {
		s := rs.Stats
		fmt.Printf("rank %d: %d checkpoints, %d late logged, %d replayed, %d re-sends suppressed\n",
			rs.Rank, s.CheckpointsTaken, s.LateLogged, s.ReplayedLate, s.SuppressedSends)
	}
}
