// Two-level topology: checkpoint groups over the member ring.
//
// A flat +1/+2 ring stops scaling around dozens of ranks: shard placement,
// heartbeats, gossip, and agreement all touch O(world) peers. A Topology
// partitions the member ring into contiguous groups of (at most) g slots.
// Redundancy, heartbeats, and gossip stay inside the group (O(g)), and one
// delegate per group carries cross-group traffic (O(world/g)), following
// the two-level scheme of Kohl et al. (arXiv:1708.08286).
//
// The assignment function is deterministic in (member set, g): ring
// position p belongs to group p/g. Because a Topology is derived from an
// immutable epoch-stamped Set, group assignment is versioned by the same
// epoch sequence as membership itself — a resize or death re-partitions
// the groups exactly when the new membership lands, which the stable
// store already pins to a recovery line.
//
// Degeneration is a design requirement, not an accident: with g <= 1 (or
// g >= world) there is a single group and every group-relative formula
// reduces to the flat-world formula it replaced, so a Topology with
// grouping disabled is bit-for-bit the pre-topology behavior.

package member

import "fmt"

// Topology is an epoch-versioned partition of a member Set into
// contiguous checkpoint groups. The zero value is a flat (single-group)
// view of an empty membership. Like Set, a Topology is immutable.
type Topology struct {
	set   Set
	group int // configured group size g; <=0 disables grouping (flat)
}

// NewTopology partitions s into groups of at most groupSize consecutive
// ring slots. groupSize <= 1 (or >= the member count) yields the flat
// single-group topology — a size-1 group would have no local redundancy.
func NewTopology(s Set, groupSize int) Topology {
	return Topology{set: s, group: groupSize}
}

// Set returns the underlying membership.
func (t Topology) Set() Set { return t.set }

// Epoch returns the epoch that committed the underlying membership (and
// therefore this group assignment).
func (t Topology) Epoch() uint64 { return t.set.Epoch() }

// GroupSize returns the configured group size g (0 when grouping is
// disabled). The last group may be smaller when g does not divide the
// member count.
func (t Topology) GroupSize() int {
	if t.group <= 0 {
		return 0
	}
	return t.group
}

// Flat reports whether this topology has a single group — either because
// grouping is disabled (g <= 0) or because the world fits in one group.
func (t Topology) Flat() bool { return t.NumGroups() <= 1 }

// NumGroups returns the number of groups (ceil(members/g); at least 1
// for a non-empty membership).
func (t Topology) NumGroups() int {
	n := t.set.Size()
	if n == 0 {
		return 0
	}
	if t.group <= 1 || t.group >= n {
		return 1
	}
	return (n + t.group - 1) / t.group
}

// GroupOf returns the group id of slot r: ring position / g. Non-members
// map through their insertion point, so the function stays total for
// slots that drained after a line committed.
func (t Topology) GroupOf(r int) int {
	if t.Flat() {
		return 0
	}
	return t.set.ringIndex(r) / t.group
}

// groupBounds returns the [lo, hi) ring-position window of group gid.
func (t Topology) groupBounds(gid int) (lo, hi int) {
	n := t.set.Size()
	if t.Flat() {
		return 0, n
	}
	lo = gid * t.group
	hi = lo + t.group
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// GroupMembers returns the sorted member slots of group gid (a copy).
func (t Topology) GroupMembers(gid int) []int {
	lo, hi := t.groupBounds(gid)
	if lo >= hi {
		return nil
	}
	return append([]int(nil), t.set.members[lo:hi]...)
}

// GroupSet returns group gid's members as a Set stamped with the same
// epoch, so the existing ring formulas (Successors, ShardPlan) run
// unchanged over the group-local ring.
func (t Topology) GroupSet(gid int) Set {
	lo, hi := t.groupBounds(gid)
	return Set{epoch: t.set.epoch, members: t.set.members[lo:hi]}
}

// GroupSetOf returns the group-local Set of the group containing r.
func (t Topology) GroupSetOf(r int) Set {
	return t.GroupSet(t.GroupOf(r))
}

// Delegate returns the designated delegate of group gid: its lowest
// member slot. The failure detector skips dead or suspected slots at
// runtime (see detect); this is the epoch-static designation every node
// computes identically from the topology alone.
func (t Topology) Delegate(gid int) int {
	lo, hi := t.groupBounds(gid)
	if lo >= hi {
		return -1
	}
	return t.set.members[lo]
}

// Delegates returns the designated delegate of every group, in group
// order.
func (t Topology) Delegates() []int {
	ng := t.NumGroups()
	out := make([]int, 0, ng)
	for gid := 0; gid < ng; gid++ {
		out = append(out, t.Delegate(gid))
	}
	return out
}

// GroupSuccessors returns up to k distinct members after r on r's
// group-local ring. In a flat topology this is exactly Set.Successors.
func (t Topology) GroupSuccessors(r, k int) []int {
	return t.GroupSetOf(r).Successors(r, k)
}

// GroupPredecessors returns up to k distinct members before r on r's
// group-local ring. In a flat topology this is exactly Set.Predecessors.
func (t Topology) GroupPredecessors(r, k int) []int {
	return t.GroupSetOf(r).Predecessors(r, k)
}

// ParityHolder returns the member that holds owner's cross-group parity
// shard: the slot at owner's within-group position in the *next* group
// (wrapping by that group's size), so parity load spreads across the
// neighbor group instead of piling onto its delegate. Returns -1 when
// the topology has fewer than two groups — with nowhere outside the
// group to put it, a cross-group shard adds no failure independence.
func (t Topology) ParityHolder(owner int) int {
	ng := t.NumGroups()
	if ng < 2 {
		return -1
	}
	gid := t.GroupOf(owner)
	lo, _ := t.groupBounds(gid)
	pos := t.set.ringIndex(owner) - lo
	hlo, hhi := t.groupBounds((gid + 1) % ng)
	if hlo >= hhi {
		return -1
	}
	return t.set.members[hlo+pos%(hhi-hlo)]
}

// SameGroups reports whether two topologies assign every slot to the
// same groups (epoch stamps ignored).
func (t Topology) SameGroups(o Topology) bool {
	if !t.set.SameMembers(o.set) {
		return false
	}
	tg, og := t.GroupSize(), o.GroupSize()
	if tg == og {
		return true
	}
	// Different configured sizes can still collapse to the same flat view.
	return t.Flat() && o.Flat()
}

// String renders the topology for logs:
// "epoch 3 groups 2x4 [[0 1 2 3] [4 5 6 7]]".
func (t Topology) String() string {
	ng := t.NumGroups()
	groups := make([][]int, 0, ng)
	for gid := 0; gid < ng; gid++ {
		groups = append(groups, t.GroupMembers(gid))
	}
	return fmt.Sprintf("epoch %d groups %dx%d %v", t.set.epoch, ng, t.GroupSize(), groups)
}
