package ops

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// fakeBackend records control-plane verbs and serves canned snapshots.
type fakeBackend struct {
	status  Status
	metrics Metrics

	ckpts  int
	drains []int
	joins  []int
	fail   error
}

func (f *fakeBackend) Status() Status   { return f.status }
func (f *fakeBackend) Metrics() Metrics { return f.metrics }
func (f *fakeBackend) CheckpointNow() error {
	f.ckpts++
	return f.fail
}
func (f *fakeBackend) Drain(rank int) error {
	f.drains = append(f.drains, rank)
	return f.fail
}
func (f *fakeBackend) JoinHint(slot int) error {
	f.joins = append(f.joins, slot)
	return f.fail
}

func newTestServer(t *testing.T, b Backend) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", b)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(out)
}

func TestStatusAndSubViews(t *testing.T) {
	b := &fakeBackend{status: Status{
		Rank: 2, World: 4, Capacity: 6, Attempt: 1,
		Epoch: 3, MembershipEpoch: 3, Members: []int{0, 1, 2, 3, 4},
		Line: 7, Checkpoints: 7, StoredBytes: 4096,
	}}
	s := newTestServer(t, b)
	base := "http://" + s.Addr()

	code, body := get(t, base+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status: %d %s", code, body)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if st.Rank != 2 || st.MembershipEpoch != 3 || len(st.Members) != 5 || st.Line != 7 {
		t.Fatalf("status round-trip mangled: %+v", st)
	}

	for path, want := range map[string]string{
		"/epoch":      `"epoch": 3`,
		"/line":       `"line": 7`,
		"/membership": `"members"`,
	} {
		code, body := get(t, base+path)
		if code != http.StatusOK || !strings.Contains(body, want) {
			t.Fatalf("%s: %d %q (want %q)", path, code, body, want)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	b := &fakeBackend{metrics: Metrics{
		Rank: 1, Attempt: 0, Commits: 12, CommitSeconds: 0.25,
		Detections: 2, DetectLastSecs: 0.031, Epoch: 3, MembershipEpoch: 3,
		Members: 5, StoredBytes: 1 << 20, ReplicatedBytes: 3 << 20,
		Reassemblies: 1, Fenced: true,
	}}
	s := newTestServer(t, b)
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE c3_commits_total counter",
		`c3_commits_total{rank="1"} 12`,
		`c3_commit_seconds_total{rank="1"} 0.25`,
		`c3_detections_total{rank="1"} 2`,
		`c3_membership_epoch{rank="1"} 3`,
		`c3_members{rank="1"} 5`,
		`c3_fenced{rank="1"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	// Exposition-format sanity: every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestVerbs(t *testing.T) {
	b := &fakeBackend{}
	s := newTestServer(t, b)
	base := "http://" + s.Addr()

	if code, body := post(t, base+"/checkpoint", ""); code != http.StatusOK {
		t.Fatalf("/checkpoint: %d %s", code, body)
	}
	if b.ckpts != 1 {
		t.Fatalf("checkpoint verb not delivered (count=%d)", b.ckpts)
	}
	if code, _ := post(t, base+"/drain?rank=4", ""); code != http.StatusOK {
		t.Fatalf("/drain?rank=4 failed: %d", code)
	}
	if code, _ := post(t, base+"/drain", `{"rank": 5}`); code != http.StatusOK {
		t.Fatalf("/drain JSON body failed: %d", code)
	}
	if fmt.Sprint(b.drains) != "[4 5]" {
		t.Fatalf("drains = %v, want [4 5]", b.drains)
	}
	if code, _ := post(t, base+"/join", `{"slot": 4}`); code != http.StatusOK {
		t.Fatalf("/join failed: %d", code)
	}
	if code, _ := post(t, base+"/join", ""); code != http.StatusOK {
		t.Fatalf("/join with no slot failed: %d", code)
	}
	if fmt.Sprint(b.joins) != "[4 -1]" {
		t.Fatalf("joins = %v, want [4 -1]", b.joins)
	}

	// Verb endpoints refuse GET.
	if code, _ := get(t, base+"/drain?rank=1"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /drain = %d, want 405", code)
	}
	// Malformed drain is a client error, not a backend call.
	if code, _ := post(t, base+"/drain", ""); code != http.StatusBadRequest {
		t.Fatalf("POST /drain with no rank = %d, want 400", code)
	}
	// Backend refusal surfaces as 409.
	b.fail = fmt.Errorf("membership agreement in flight")
	if code, body := post(t, base+"/drain?rank=4", ""); code != http.StatusConflict || !strings.Contains(body, "in flight") {
		t.Fatalf("backend error not surfaced: %d %q", code, body)
	}
}
