// Package c3wirecount enforces the decode-clamping invariant from PR 3:
// any allocation whose size comes off the wire must flow through
// wire.Reader.Count (or the internal length() path it powers), which
// validates the count against the bytes actually remaining BEFORE the
// allocation happens.
//
// Motivation: before PR 3, deserializers did
//
//	n := int(r.U32())
//	buf := make([]byte, n)      // corrupt frame => multi-GB make()
//
// and a truncated or hostile frame off a real socket could allocate
// gigabytes or spin a loop 2^31 times. Reader.Count turns that into
// ErrShortBuffer up front. This analyzer performs a light intra-function
// taint analysis: values produced by wire.Reader numeric reads (U8, U32,
// U64, I64, Int) are tainted; taint propagates through conversions,
// arithmetic and local assignment; a tainted value used as a make()
// length/capacity or as the bound of a for loop that appends is a finding.
// Reader.Count is the sanitizer: its result is clean.
package c3wirecount

import (
	"go/ast"
	"go/token"
	"go/types"

	"c3/internal/lint/analysis"
)

// Analyzer is the c3wirecount pass.
var Analyzer = &analysis.Analyzer{
	Name: "c3wirecount",
	Doc: "allocations sized by a raw wire.Reader read must be clamped via Reader.Count(elemSize) " +
		"so corrupt or truncated input fails before the make()",
	Run: run,
}

// taintedReads are the wire.Reader methods whose results, when used as an
// allocation size, bypass clamping. Count is the sanitizer.
var taintedReads = map[string]bool{
	"U8": true, "U32": true, "U64": true, "I64": true, "Int": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
				return false // checkBody descends into nested FuncLits itself
			}
			return true
		})
	}
	return nil
}

// checkBody walks one function body in source order, tracking which local
// objects currently hold a raw (unclamped) wire read.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)

	var exprTainted func(e ast.Expr) bool
	exprTainted = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil {
				return tainted[obj]
			}
		case *ast.ParenExpr:
			return exprTainted(e.X)
		case *ast.BinaryExpr:
			return exprTainted(e.X) || exprTainted(e.Y)
		case *ast.UnaryExpr:
			return exprTainted(e.X)
		case *ast.CallExpr:
			// Conversion int(x), uint32(x), ...: taint passes through.
			if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				return exprTainted(e.Args[0])
			}
			if m := readerMethod(pass, e); m != "" {
				return taintedReads[m] // Count (and Bytes32 etc.) come back clean
			}
		}
		return false
	}

	report := func(pos token.Pos, what string, e ast.Expr) {
		pass.Reportf(pos, "%s sized by an unclamped wire read%s; derive the count via wire.Reader.Count(elemSize) so corrupt input fails before allocating", what, describe(e))
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Taint (or clean) locals by what is assigned into them. The
			// walk is source-ordered, which matches how decoder code reads.
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				tainted[obj] = exprTainted(n.Rhs[i])
			}
		case *ast.CallExpr:
			if isBuiltin(pass, n.Fun, "make") {
				for _, arg := range n.Args[1:] { // args[0] is the type
					if exprTainted(arg) {
						report(arg.Pos(), "make()", arg)
					}
				}
			}
		case *ast.ForStmt:
			// for i := 0; i < n; i++ { ... append ... } with tainted n:
			// the loop itself is the allocation.
			if cond, ok := n.Cond.(*ast.BinaryExpr); ok {
				var bound ast.Expr
				switch cond.Op {
				case token.LSS, token.LEQ:
					bound = cond.Y
				case token.GTR, token.GEQ:
					bound = cond.X
				}
				if bound != nil && exprTainted(bound) && loopAppends(pass, n.Body) {
					report(cond.Pos(), "append loop", bound)
				}
			}
		}
		return true
	})
}

// loopAppends reports whether the loop body grows a slice via append or
// allocates via make — the shapes that turn a bogus count into memory.
func loopAppends(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if isBuiltin(pass, call.Fun, "append") || isBuiltin(pass, call.Fun, "make") {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// readerMethod returns the method name if call is a method call on
// c3/internal/wire.Reader (or *Reader), else "".
func readerMethod(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return ""
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if named.Obj().Pkg().Path() != "c3/internal/wire" || named.Obj().Name() != "Reader" {
		return ""
	}
	return sel.Sel.Name
}

func describe(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return " (" + id.Name + ")"
	}
	return ""
}
