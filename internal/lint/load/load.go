// Package load turns `go list` package patterns into parsed, type-checked
// packages for the c3lint analyzers — a small stand-in for
// golang.org/x/tools/go/packages that uses only the standard library.
//
// One `go list -deps -json` invocation enumerates the requested packages
// plus their full import closure (standard library included); a recursive
// importer then type-checks packages from source on demand, so no export
// data, build cache or network access is required. Dependency packages are
// checked with IgnoreFuncBodies for speed; only the packages matched by the
// patterns get full syntax and types.Info, which is all the analyzers see.
//
// The loader shells out to the go command with CGO_ENABLED=0 so the
// standard library presents its pure-Go file lists (the cgo variants of
// net, os/user, ... cannot be type-checked from source).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one fully analyzed (pattern-matched) package.
type Package struct {
	Fset       *token.FileSet // shared across every Package from one Loader
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths, build-constrained, no tests
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error // non-empty means Info/Types are best-effort
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Loader owns the package universe and the type-checking caches. It is
// reusable across multiple Check calls (the fixture runner exploits this).
type Loader struct {
	Fset *token.FileSet

	dir    string              // where go list runs (any dir inside the module)
	pkgs   map[string]*listPkg // resolved import path -> metadata
	bydir  map[string]*listPkg // package dir -> metadata
	cache  map[string]*types.Package
	parsed map[string][]*ast.File
}

// New builds a Loader whose universe is the import closure of patterns,
// resolved by the go command from dir. Pass "./..." (plus "std" if callers
// will type-check files that import beyond the module's own closure).
func New(dir string, patterns ...string) (*Loader, error) {
	l := &Loader{
		Fset:   token.NewFileSet(),
		dir:    dir,
		pkgs:   make(map[string]*listPkg),
		bydir:  make(map[string]*listPkg),
		cache:  map[string]*types.Package{"unsafe": types.Unsafe},
		parsed: make(map[string][]*ast.File),
	}
	if err := l.list(patterns); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Loader) list(patterns []string) error {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			break
		}
		if p.ImportPath == "" || p.Error != nil {
			continue
		}
		l.pkgs[p.ImportPath] = p
		l.bydir[p.Dir] = p
		// The standard library vendors x/net etc. under "vendor/"; register
		// the unvendored spelling too so source imports resolve without an
		// ImportMap lookup from every possible importer.
		if rest, ok := strings.CutPrefix(p.ImportPath, "vendor/"); ok {
			l.pkgs[rest] = p
		}
	}
	return nil
}

// Roots returns the pattern-matched packages, type-checked with full
// syntax and types.Info, in deterministic (go list) order.
func (l *Loader) Roots() ([]*Package, error) {
	var roots []*Package
	for _, p := range l.ordered() {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := l.Check(p.ImportPath)
		if err != nil {
			return nil, err
		}
		roots = append(roots, pkg)
	}
	return roots, nil
}

// ordered replays go list's output order (the decoder map loses it, so we
// re-derive a stable order by sorting on import path).
func (l *Loader) ordered() []*listPkg {
	seen := make(map[*listPkg]bool)
	var out []*listPkg
	for _, p := range l.pkgs {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ImportPath > out[j].ImportPath; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Check type-checks one universe package with full syntax and Info.
func (l *Loader) Check(path string) (*Package, error) {
	p, ok := l.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("lint: package %q not in the loaded universe", path)
	}
	files, abs, err := l.parse(p)
	if err != nil {
		return nil, err
	}
	return l.checkFiles(p.ImportPath, p.Dir, abs, files)
}

// CheckFiles type-checks an explicit file list as a package rooted at dir
// (used by the fixture runner for testdata packages that go list cannot
// see). Imports resolve against the Loader's universe.
func (l *Loader) CheckFiles(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.checkFiles(path, dir, filenames, files)
}

func (l *Loader) checkFiles(path, dir string, filenames []string, files []*ast.File) (*Package, error) {
	pkg := &Package{Fset: l.Fset, ImportPath: path, Dir: dir, GoFiles: filenames, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: (*importerFrom)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info) // errors collected above
	pkg.Types, pkg.Info = tpkg, info
	if prev, ok := l.cache[path]; !ok || !prev.Complete() {
		l.cache[path] = tpkg
	}
	return pkg, nil
}

func (l *Loader) parse(p *listPkg) ([]*ast.File, []string, error) {
	if files, ok := l.parsed[p.ImportPath]; ok {
		return files, absFiles(p), nil
	}
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	l.parsed[p.ImportPath] = files
	return files, absFiles(p), nil
}

func absFiles(p *listPkg) []string {
	out := make([]string, len(p.GoFiles))
	for i, name := range p.GoFiles {
		out[i] = filepath.Join(p.Dir, name)
	}
	return out
}

// importerFrom is the recursive source importer: dependency packages are
// type-checked (declarations only) the first time anything imports them.
type importerFrom Loader

func (imp *importerFrom) Import(path string) (*types.Package, error) {
	return imp.ImportFrom(path, "", 0)
}

func (imp *importerFrom) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	l := (*Loader)(imp)
	// Vendor resolution: prefer the importing package's ImportMap.
	if from, ok := l.bydir[srcDir]; ok {
		if mapped, ok := from.ImportMap[path]; ok {
			path = mapped
		}
	}
	if tp, ok := l.cache[path]; ok {
		return tp, nil
	}
	p, ok := l.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("lint: import %q not in the loaded universe (extend the loader's patterns)", path)
	}
	files, _, err := l.parse(p)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         imp,
		IgnoreFuncBodies: true,
		// Dependencies must check cleanly; any error fails the import so
		// the root package reports it.
	}
	tp, err := conf.Check(p.ImportPath, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking dependency %s: %v", p.ImportPath, err)
	}
	l.cache[path] = tp
	return tp, nil
}
