package c3wirecount_test

import (
	"strings"
	"testing"

	"c3/internal/lint/c3wirecount"
	"c3/internal/lint/linttest"
)

// TestFixture covers the historical pre-PR-3 unclamped decode (make sized
// by a raw U32), taint through conversions/arithmetic, tainted append-loop
// bounds, and the Count sanitizer cleaning a local on reassignment.
func TestFixture(t *testing.T) {
	res := linttest.Run(t, "internal/lint/testdata/src/wirecount", "fixture/wirecount",
		c3wirecount.Analyzer)

	// The historical regression must be among the findings: the make() in
	// decodeUnclamped, sized by local n.
	for _, f := range res.Findings {
		if strings.Contains(f.Message, "unclamped wire read (n)") {
			return
		}
	}
	t.Errorf("historical unclamped-decode reconstruction not flagged; findings: %v", res.Findings)
}
