package mpi

import "fmt"

// Send transmits count elements of dt from buf to dest (a comm rank) with
// the given tag. Sends are eager: the payload is packed and buffered by the
// transport, so Send never blocks on the receiver (MPI permits buffered
// semantics for standard-mode sends; the paper's protocol is agnostic to
// this choice).
func (c *Comm) Send(buf []byte, count int, dt *Datatype, dest, tag int) error {
	if err := checkUserTag(tag); err != nil {
		return err
	}
	return c.sendInternal(buf, count, dt, dest, tag, c.ctx)
}

// SendBytes sends a raw byte payload.
func (c *Comm) SendBytes(data []byte, dest, tag int) error {
	return c.Send(data, len(data), TypeByte, dest, tag)
}

func (c *Comm) sendInternal(buf []byte, count int, dt *Datatype, dest, tag int, ctx uint32) error {
	wr, err := c.WorldRank(dest)
	if err != nil {
		return err
	}
	packed, err := dt.Pack(buf, count)
	if err != nil {
		return err
	}
	return c.proc.send(wr, tag, ctx, packed)
}

// Bsend is a buffered send: identical delivery semantics to Send, but the
// payload size is accounted against the buffer attached with BufferAttach,
// as in MPI_Bsend. The accounting models the reservation: capacity must
// cover the single largest outstanding message.
func (c *Comm) Bsend(buf []byte, count int, dt *Datatype, dest, tag int) error {
	size := count * dt.Size()
	if size > c.proc.attachCap {
		return fmt.Errorf("%w: need %d bytes, attached %d", ErrBuffer, size, c.proc.attachCap)
	}
	if size > c.proc.attachUsed {
		c.proc.attachUsed = size
	}
	return c.Send(buf, count, dt, dest, tag)
}

// Recv blocks until a message matching (src, tag) on this communicator
// arrives, unpacks it into buf, and returns its status. src may be
// AnySource and tag may be AnyTag.
func (c *Comm) Recv(buf []byte, count int, dt *Datatype, src, tag int) (Status, error) {
	req, err := c.Irecv(buf, count, dt, src, tag)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// RecvBytes receives a raw byte payload into buf.
func (c *Comm) RecvBytes(buf []byte, src, tag int) (Status, error) {
	return c.Recv(buf, len(buf), TypeByte, src, tag)
}

// recvInternal is a blocking receive on an explicit context id (collective
// plane). Wildcards are permitted.
func (p *Proc) recvInternal(buf []byte, src, tag int, c *Comm, ctx uint32) (Status, error) {
	req := &Request{
		proc: p, kind: reqRecv, buf: buf, count: len(buf), dt: TypeByte,
		src: src, tag: tag, comm: c, ctx: ctx,
	}
	if env := p.takeUnexpected(req); env != nil {
		req.complete(env)
	} else {
		p.posted = append(p.posted, req)
	}
	return req.Wait()
}

// Sendrecv performs a combined send and receive, safe against exchange
// deadlock (sends are eager).
func (c *Comm) Sendrecv(
	sendBuf []byte, sendCount int, sendType *Datatype, dest, sendTag int,
	recvBuf []byte, recvCount int, recvType *Datatype, src, recvTag int,
) (Status, error) {
	rreq, err := c.Irecv(recvBuf, recvCount, recvType, src, recvTag)
	if err != nil {
		return Status{}, err
	}
	if err := c.Send(sendBuf, sendCount, sendType, dest, sendTag); err != nil {
		return Status{}, err
	}
	return rreq.Wait()
}

// Probe blocks until a message matching (src, tag) is available and returns
// its status without receiving it.
func (c *Comm) Probe(src, tag int) (Status, error) {
	for {
		if env := c.proc.peekUnexpected(src, tag, c); env != nil {
			return c.statusFor(env), nil
		}
		if _, err := c.proc.drainOne(true); err != nil {
			return Status{}, err
		}
	}
}

// Iprobe polls for a matching message; found reports whether one is
// available. It drains any transport arrivals first, so it also serves as a
// progress call.
func (c *Comm) Iprobe(src, tag int) (st Status, found bool, err error) {
	for {
		got, err := c.proc.drainOne(false)
		if err != nil {
			return Status{}, false, err
		}
		if !got {
			break
		}
	}
	if env := c.proc.peekUnexpected(src, tag, c); env != nil {
		return c.statusFor(env), true, nil
	}
	return Status{}, false, nil
}

func (c *Comm) statusFor(env *Envelope) Status {
	srcComm, _ := c.worldToComm(env.SrcWorld)
	return Status{Source: srcComm, Tag: env.Tag, Bytes: len(env.Data)}
}

// SendPacked transmits an already-packed payload on the communicator's
// point-to-point plane. No user-tag restriction is applied: this entry point
// exists for protocol layers (such as the checkpoint coordination layer)
// that frame user payloads with their own headers and reserve internal tags
// above MaxUserTag. Application code should use Send.
func (c *Comm) SendPacked(data []byte, dest, tag int) error {
	wr, err := c.WorldRank(dest)
	if err != nil {
		return err
	}
	return c.proc.send(wr, tag, c.ctx, append([]byte(nil), data...))
}

// IrecvPacked posts a non-blocking receive of a packed payload into buf,
// with no user-tag restriction. For protocol layers; see SendPacked.
func (c *Comm) IrecvPacked(buf []byte, src, tag int) (*Request, error) {
	if src != AnySource {
		if _, err := c.WorldRank(src); err != nil {
			return nil, err
		}
	}
	req := &Request{
		proc: c.proc, kind: reqRecv,
		buf: buf, count: len(buf), dt: TypeByte,
		src: src, tag: tag, comm: c, ctx: c.ctx,
	}
	if env := c.proc.takeUnexpected(req); env != nil {
		req.complete(env)
	} else {
		c.proc.posted = append(c.proc.posted, req)
	}
	return req, nil
}

// RecvPacked receives a packed payload into buf, blocking. For protocol
// layers; see SendPacked.
func (c *Comm) RecvPacked(buf []byte, src, tag int) (Status, error) {
	req, err := c.IrecvPacked(buf, src, tag)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// CollCtx returns the communicator's collective-plane context id. Protocol
// layers use it to keep their own collective plumbing invisible to
// application wildcard receives on the point-to-point plane.
func (c *Comm) CollCtx() uint32 { return c.collCtx() }

// SendPackedColl is SendPacked on the communicator's collective plane.
func (c *Comm) SendPackedColl(data []byte, dest, tag int) error {
	wr, err := c.WorldRank(dest)
	if err != nil {
		return err
	}
	return c.proc.send(wr, tag, c.collCtx(), append([]byte(nil), data...))
}

// RecvPackedColl is RecvPacked on the communicator's collective plane.
func (c *Comm) RecvPackedColl(buf []byte, src, tag int) (Status, error) {
	return c.proc.recvInternal(buf, src, tag, c, c.collCtx())
}

func checkUserTag(tag int) error {
	if tag < 0 || tag > MaxUserTag {
		return fmt.Errorf("%w: tag %d outside [0,%d]", ErrInvalid, tag, MaxUserTag)
	}
	return nil
}
