package mpi

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContiguousPackUnpack(t *testing.T) {
	ct, err := Contiguous(3, TypeFloat64)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Size() != 24 || ct.Extent() != 24 {
		t.Fatalf("size=%d extent=%d", ct.Size(), ct.Extent())
	}
	src := Float64Bytes([]float64{1, 2, 3, 4, 5, 6})
	packed, err := ct.Pack(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(packed, src) {
		t.Fatal("contiguous pack should be identity")
	}
	dst := make([]byte, len(src))
	if _, err := ct.Unpack(packed, dst, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("round trip mismatch")
	}
}

func TestVectorPack(t *testing.T) {
	// A column of a 4x4 row-major float64 matrix: count=4, blockLen=1, stride=4.
	vt, err := Vector(4, 1, 4, TypeFloat64)
	if err != nil {
		t.Fatal(err)
	}
	if vt.Size() != 32 {
		t.Fatalf("size=%d", vt.Size())
	}
	if vt.Extent() != ((3*4)+1)*8 {
		t.Fatalf("extent=%d", vt.Extent())
	}
	mat := make([]float64, 16)
	for i := range mat {
		mat[i] = float64(i)
	}
	src := Float64Bytes(mat)
	packed, err := vt.Pack(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	col := BytesFloat64s(packed)
	want := []float64{0, 4, 8, 12}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("col[%d]=%v want %v", i, col[i], want[i])
		}
	}
	// Unpack into a zeroed matrix and verify placement.
	dst := make([]byte, len(src))
	if _, err := vt.Unpack(packed, dst, 1); err != nil {
		t.Fatal(err)
	}
	out := BytesFloat64s(dst)
	for i := 0; i < 16; i++ {
		wantV := 0.0
		if i%4 == 0 {
			wantV = float64(i)
		}
		if out[i] != wantV {
			t.Fatalf("dst[%d]=%v want %v", i, out[i], wantV)
		}
	}
}

func TestVectorOverlapRejected(t *testing.T) {
	if _, err := Vector(2, 3, 2, TypeByte); err == nil {
		t.Fatal("overlapping vector accepted")
	}
}

func TestIndexedPackUnpack(t *testing.T) {
	it, err := Indexed([]int{2, 1}, []int{0, 5}, TypeInt64)
	if err != nil {
		t.Fatal(err)
	}
	if it.Size() != 24 || it.Extent() != 48 {
		t.Fatalf("size=%d extent=%d", it.Size(), it.Extent())
	}
	src := Int64Bytes([]int64{10, 11, 12, 13, 14, 15})
	packed, err := it.Pack(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := BytesInt64s(packed)
	want := []int64{10, 11, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packed[%d]=%d want %d", i, got[i], want[i])
		}
	}
	dst := make([]byte, 48)
	if _, err := it.Unpack(packed, dst, 1); err != nil {
		t.Fatal(err)
	}
	out := BytesInt64s(dst)
	if out[0] != 10 || out[1] != 11 || out[5] != 15 {
		t.Fatalf("unpacked %v", out)
	}
}

func TestStructHierarchy(t *testing.T) {
	// struct { int64 header; float64 values[3] } — a type built from a
	// contiguous child, exercising the datatype hierarchy.
	vals, err := Contiguous(3, TypeFloat64)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Struct([]int{1, 1}, []int{0, 8}, []*Datatype{TypeInt64, vals})
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 32 || st.Extent() != 32 {
		t.Fatalf("size=%d extent=%d", st.Size(), st.Extent())
	}
	src := make([]byte, 32)
	PutInt64s(src[0:8], []int64{7})
	PutFloat64s(src[8:32], []float64{1.5, 2.5, 3.5})
	packed, err := st.Pack(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 32)
	if _, err := st.Unpack(packed, dst, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("struct round trip mismatch")
	}
}

func TestPackUnpackPropertyRoundTrip(t *testing.T) {
	// Property: for random vector shapes and random payloads, Unpack(Pack(x))
	// restores exactly the bytes Pack visited.
	f := func(countU, blockU, padU uint8, seed int64) bool {
		count := int(countU%5) + 1
		block := int(blockU%4) + 1
		stride := block + int(padU%3)
		vt, err := Vector(count, block, stride, TypeFloat64)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		src := make([]byte, vt.Extent()+64)
		rng.Read(src)
		packed, err := vt.Pack(src, 1)
		if err != nil {
			return false
		}
		if len(packed) != vt.Size() {
			return false
		}
		dst := make([]byte, len(src))
		if _, err := vt.Unpack(packed, dst, 1); err != nil {
			return false
		}
		repacked, err := vt.Pack(dst, 1)
		if err != nil {
			return false
		}
		return bytes.Equal(packed, repacked)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTypedSliceHelpers(t *testing.T) {
	fs := []float64{1.25, -2.5, 3e100}
	if got := BytesFloat64s(Float64Bytes(fs)); got[0] != fs[0] || got[1] != fs[1] || got[2] != fs[2] {
		t.Fatalf("float64 round trip %v", got)
	}
	is := []int64{-1, 0, 1 << 62}
	if got := BytesInt64s(Int64Bytes(is)); got[0] != is[0] || got[2] != is[2] {
		t.Fatalf("int64 round trip %v", got)
	}
	cs := []complex128{1 + 2i, -3.5 - 0.25i}
	b := make([]byte, 32)
	PutComplex128s(b, cs)
	out := make([]complex128, 2)
	GetComplex128s(out, b)
	if out[0] != cs[0] || out[1] != cs[1] {
		t.Fatalf("complex round trip %v", out)
	}
}
