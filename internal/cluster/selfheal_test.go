package cluster_test

// Self-healing end-to-end tests: the launcher is a dumb respawner, the
// workers detect failures, agree on epochs, and coordinate recovery
// themselves (internal/detect over the replication mesh).

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"c3/internal/cluster"
	"c3/internal/trace"
)

// launchSelfHeal runs a self-healing multi-process world from the test
// binary's worker mode.
func launchSelfHeal(t *testing.T, ranks int, kill *cluster.ExternalKillSpec, extra ...string) *cluster.LaunchResult {
	t.Helper()
	res, err := cluster.Launch(cluster.LaunchConfig{
		Ranks:        ranks,
		Exe:          os.Args[0],
		Env:          []string{procWorkerEnv + "=1", "GOTRACEBACK=all"},
		Timeout:      90 * time.Second,
		SelfHeal:     true,
		ExternalKill: kill,
		Args: func(rank int, mpiAddrs, replAddrs []string) []string {
			args := []string{
				"-rank", strconv.Itoa(rank),
				"-ranks", strconv.Itoa(ranks),
				"-peers", strings.Join(mpiAddrs, ","),
				"-repl-peers", strings.Join(replAddrs, ","),
				"-self-heal",
				"-heartbeat", "15ms",
				"-phi", "6",
				// Tuned with the suspicion threshold: recovery reads give a
				// still-rejoining peer a second sweep instead of one long wait.
				"-query-timeout", "1s",
				"-query-retries", "2",
			}
			return append(args, extra...)
		},
		Log: t.Logf,
	})
	if err != nil {
		t.Fatalf("self-heal launch: %v", err)
	}
	return res
}

// statField extracts an integer k=v field from a rank's stat line.
func statField(t *testing.T, stat, key string) int64 {
	t.Helper()
	for _, f := range strings.Fields(stat) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Fatalf("stat field %s in %q: %v", key, stat, err)
			}
			return n
		}
	}
	t.Fatalf("stat %q has no %s field", stat, key)
	return 0
}

// TestSelfHealingExternalSIGKILL is the headline acceptance scenario: a
// 4-process world with NO launcher-injected failure spec survives an
// external `kill -9` purely via detector-triggered recovery. The launcher
// only plays operator (delivers the kill) and respawner (spawns the
// replacement on the coordinator's request); the survivors detect the
// death via heartbeat accrual, agree on epoch 2, interrupt in-flight
// commits, negotiate the restore line, and converge to the failure-free
// checksums.
func TestSelfHealingExternalSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	const victim = 1
	ref := procReference(t, 4)
	traceDir := t.TempDir()
	res := launchSelfHeal(t, 4,
		&cluster.ExternalKillSpec{Rank: victim, AfterCheckpoints: 2},
		"-every", "2", "-trace-dir", traceDir)

	if res.Restarts != 1 {
		t.Fatalf("restarts=%d, want exactly 1 respawned process", res.Restarts)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts=%d, want 2 (one failure, one recovery)", res.Attempts)
	}
	if res.KillTime.IsZero() {
		t.Fatal("launcher did not record the external kill time")
	}
	checkProcSums(t, res, ref)

	// Survivors: exactly one detection, the agreement moved the world to
	// epoch 2, and the successful attempt restored from the recovery line.
	var latency time.Duration
	for r := 0; r < 4; r++ {
		stat := res.Stats[r]
		if statField(t, stat, "epochs") != 2 {
			t.Errorf("rank %d stat %q: epochs != 2", r, stat)
		}
		if statField(t, stat, "restores") != 1 {
			t.Errorf("rank %d stat %q: restores != 1", r, stat)
		}
		if r == victim {
			continue
		}
		if statField(t, stat, "detections") != 1 {
			t.Errorf("survivor rank %d stat %q: detections != 1", r, stat)
		}
		if us := statField(t, stat, "suspect_us"); us > 0 {
			d := time.UnixMicro(us).Sub(res.KillTime)
			if d > 0 && (latency == 0 || d < latency) {
				latency = d
			}
		}
	}
	// The replacement must have reassembled its checkpoints from peers.
	if statField(t, res.Stats[victim], "reassemblies") < 1 {
		t.Errorf("replacement stat %q: checkpoints not reassembled from peers", res.Stats[victim])
	}
	if latency <= 0 {
		t.Error("no survivor reported a positive detection latency")
	} else {
		t.Logf("detection latency (kill -> first suspicion): %v", latency)
		if latency > 10*time.Second {
			t.Errorf("detection latency %v is implausibly large", latency)
		}
	}

	checkSIGKILLTrace(t, traceDir)
}

// checkSIGKILLTrace merges the flight-recorder dumps the workers wrote
// with -trace-dir and asserts the tentpole acceptance property live (the
// golden-dump variant lives in internal/trace): the dumps of all four
// final incarnations merge into a causally consistent timeline whose
// span and instant coverage spans the whole recovery arc.
func checkSIGKILLTrace(t *testing.T, traceDir string) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(traceDir, "*.c3tr"))
	if err != nil || len(paths) != 4 {
		t.Fatalf("trace dumps: %v (found %d in %s, want 4)", err, len(paths), traceDir)
	}
	var dumps []*trace.Dump
	for _, p := range paths {
		d, err := trace.ReadDump(p)
		if err != nil {
			t.Fatalf("read trace dump %s: %v", p, err)
		}
		dumps = append(dumps, d)
	}
	tl, err := trace.Merge(dumps)
	if err != nil {
		t.Fatalf("trace merge: %v", err)
	}
	st := tl.Stats()
	if st.Ranks != 4 || st.Stitched == 0 {
		t.Fatalf("trace: ranks=%d stitched=%d, want 4 ranks with cross-rank edges", st.Ranks, st.Stitched)
	}
	for _, kind := range []trace.Kind{trace.KindSuspect, trace.KindEpoch, trace.KindRespawn} {
		if st.InstantCounts[kind] == 0 {
			t.Errorf("trace has no %s events", kind)
		}
	}
	spanKinds := map[trace.Kind]bool{}
	for _, s := range tl.PhaseBreakdown() {
		spanKinds[s.Kind] = true
	}
	for _, kind := range []trace.Kind{trace.KindAgree, trace.KindReassemble, trace.KindRestore, trace.KindCommit} {
		if !spanKinds[kind] {
			t.Errorf("trace phase breakdown has no %s spans", kind)
		}
	}
	t.Logf("trace: %d events, %d stitched edges, %d orphan recvs", st.Events, st.Stitched, st.OrphanRecvs)
}

// TestSelfHealingGroupedSIGKILL drives the external-kill scenario through
// the two-level topology over real TCP: 8 processes in two checkpoint
// groups of 4, group-local rs shards plus a cross-group parity shard, the
// detector running group heartbeat rings with delegate reports and the
// inter-group relay plane. An operator SIGKILL of a non-delegate interior
// rank must be detected by its group, agreed world-wide through the
// delegates, and recovered to the failure-free checksums.
func TestSelfHealingGroupedSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	const victim = 5 // group 1 interior: ranks 4..7, delegate 4
	ref := procReference(t, 8)
	res := launchSelfHeal(t, 8,
		&cluster.ExternalKillSpec{Rank: victim, AfterCheckpoints: 2},
		"-every", "2",
		"-codec", "rs", "-shards", "2", "-parity", "1",
		"-group-size", "4")

	if res.Restarts != 1 {
		t.Fatalf("restarts=%d, want exactly 1 respawned process", res.Restarts)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts=%d, want 2 (one failure, one recovery)", res.Attempts)
	}
	checkProcSums(t, res, ref)
	for r := 0; r < 8; r++ {
		stat := res.Stats[r]
		if statField(t, stat, "epochs") != 2 {
			t.Errorf("rank %d stat %q: epochs != 2", r, stat)
		}
		if statField(t, stat, "restores") != 1 {
			t.Errorf("rank %d stat %q: restores != 1", r, stat)
		}
	}
	// The replacement rebuilt its checkpoints from group-local shards.
	if statField(t, res.Stats[victim], "reassemblies") < 1 {
		t.Errorf("replacement stat %q: checkpoints not reassembled from peers", res.Stats[victim])
	}
}

// TestSelfHealingKillBeforeFirstLine: the external kill lands before the
// victim commits anything. The survivors must still detect, agree, and
// recover — this time by restarting the whole world from scratch, since no
// complete recovery line exists (a partial line of survivor commits must
// not be reassembled).
func TestSelfHealingKillBeforeFirstLine(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	const victim = 2
	ref := procReference(t, 4)
	res := launchSelfHeal(t, 4,
		&cluster.ExternalKillSpec{Rank: victim, AfterCheckpoints: 0},
		"-every", "4")

	if res.Restarts != 1 {
		t.Fatalf("restarts=%d, want 1", res.Restarts)
	}
	checkProcSums(t, res, ref)
	for r := 0; r < 4; r++ {
		stat := res.Stats[r]
		// From scratch: nothing restored, nothing reassembled.
		if statField(t, stat, "restores") != 0 {
			t.Errorf("rank %d stat %q: restored despite no committed line", r, stat)
		}
		if statField(t, stat, "reassemblies") != 0 {
			t.Errorf("rank %d stat %q: reassembled a partial line", r, stat)
		}
		if statField(t, stat, "epochs") != 2 {
			t.Errorf("rank %d stat %q: epochs != 2", r, stat)
		}
	}
}

// TestMultiProcessRestartFromScratch covers the legacy launcher path for
// the same from-scratch case, with a deterministic kill position: the
// victim dies at its third pragma — exactly where line 1 would start
// (every=3) — so no rank's line 1 can complete globally. The replacement
// must trigger a whole-world from-scratch restart rather than reassemble
// the survivors' partial line.
func TestMultiProcessRestartFromScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	ref := procReference(t, 4)
	res := launchProcs(t, 4, "-every", "3", "-kill-rank", "1", "-kill-at", "3")
	if res.Restarts != 1 {
		t.Fatalf("restarts=%d, want 1", res.Restarts)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts=%d, want 2", res.Attempts)
	}
	checkProcSums(t, res, ref)
	for r := 0; r < 4; r++ {
		stat := res.Stats[r]
		if !strings.Contains(stat, "restores=0") {
			t.Errorf("rank %d stat %q: want restores=0 (from-scratch restart)", r, stat)
		}
		if !strings.Contains(stat, "reassemblies=0") {
			t.Errorf("rank %d stat %q: want reassemblies=0 (no line to reassemble)", r, stat)
		}
	}
}

// TestSelfHealingFailureFree: the detector plane must be pure overhead in
// a failure-free run — one attempt, epoch 1, no detections.
func TestSelfHealingFailureFree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	ref := procReference(t, 4)
	res := launchSelfHeal(t, 4, nil, "-every", "4")
	if res.Attempts != 1 || res.Restarts != 0 {
		t.Fatalf("attempts=%d restarts=%d, want 1/0", res.Attempts, res.Restarts)
	}
	checkProcSums(t, res, ref)
	for r := 0; r < 4; r++ {
		stat := res.Stats[r]
		if statField(t, stat, "epochs") != 1 || statField(t, stat, "detections") != 0 {
			t.Errorf("rank %d stat %q: want epochs=1 detections=0", r, stat)
		}
	}
}
