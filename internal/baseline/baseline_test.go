package baseline_test

import (
	"testing"

	"c3/internal/apps"
	"c3/internal/baseline"
	"c3/internal/cluster"
	"c3/internal/stable"
	"c3/internal/statesave"
)

func TestCondorModelAccountsFreedHeap(t *testing.T) {
	m := baseline.DefaultCondorModel()
	reg := statesave.NewRegistry()
	heap := statesave.NewHeap()
	reg.Register(heap.Section())

	// 1 MB live, then allocate-and-free 64 MB of scratch (EP's pattern).
	live := heap.Alloc("live", 1<<20)
	scratch := heap.Alloc("scratch", 64<<20)
	heap.Free(scratch)
	_ = live

	condor := m.CheckpointBytes(reg, heap)
	c3size := baseline.C3CheckpointBytes(reg)

	if c3size >= condor {
		t.Fatalf("C3 %d >= Condor %d", c3size, condor)
	}
	// The Condor image must pay for the freed scratch.
	if condor < 64<<20 {
		t.Fatalf("Condor size %d does not include freed heap", condor)
	}
	// C3 pays only for live data (plus small overheads).
	if c3size > 2<<20 {
		t.Fatalf("C3 size %d pays for dead data", c3size)
	}
}

func TestCondorModelSmallDeltaWithoutFrees(t *testing.T) {
	// For codes whose heap is fully live, the reduction must be small —
	// the paper's Table 1 shows ~0-5% for most NAS codes.
	m := baseline.DefaultCondorModel()
	reg := statesave.NewRegistry()
	heap := statesave.NewHeap()
	reg.Register(heap.Section())
	heap.Alloc("grid", 100<<20)

	condor := m.CheckpointBytes(reg, heap)
	c3size := baseline.C3CheckpointBytes(reg)
	reduction := float64(condor-c3size) / float64(condor)
	if reduction > 0.05 {
		t.Fatalf("reduction %.2f%% too large for a fully-live heap", 100*reduction)
	}
}

func TestBlockingCheckpointerRoundTrip(t *testing.T) {
	const ranks = 4
	store := stable.NewMemStore()
	k, _ := apps.Lookup("CG")
	p := k.Defaults(apps.ClassS)

	ref := apps.NewOutput()
	if _, err := cluster.Run(cluster.Config{
		Ranks: ranks, Direct: true, App: k.App(p, ref),
	}); err != nil {
		t.Fatal(err)
	}

	out := apps.NewOutput()
	if _, err := cluster.Run(cluster.Config{
		Ranks:  ranks,
		Direct: true,
		App:    baseline.WrapBlocking(store, 3, k.App(p, out)),
	}); err != nil {
		t.Fatal(err)
	}

	// Blocking checkpointing is semantically transparent too.
	for r := 0; r < ranks; r++ {
		a, _ := ref.Checksum(r)
		b, ok := out.Checksum(r)
		if !ok || a != b {
			t.Fatalf("rank %d: %v vs %v", r, a, b)
		}
	}
	// And it must actually have committed checkpoints on every rank.
	for r := 0; r < ranks; r++ {
		if _, ok, _ := store.LastCommitted(r); !ok {
			t.Fatalf("rank %d has no blocking checkpoint", r)
		}
	}
}
