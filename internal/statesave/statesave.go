// Package statesave implements application-level state saving: the Go
// analogue of the C3 precompiler's inserted state-registration code
// (paper Section 5).
//
// In C3, a precompiler instruments a C program so that, as variables enter
// and leave scope and as heap objects are allocated and freed, a runtime
// library maintains "an up-to-date description of the process's state"; at
// a checkpoint the description is walked and the state written out. Go has
// no preprocessor and no stable addresses, so the registration is explicit:
// the application registers named cells (scalars, slices, custom sections)
// with a Registry, and allocates bulk data from a Heap. Both are walked at
// checkpoint time, and only live data is saved — the property responsible
// for C3's checkpoint-size advantage over system-level checkpointing in the
// paper's Table 1.
//
// On restart the application re-executes its prologue (re-registering the
// same cells in the same order), then Restore copies the saved contents back
// into the registered cells; execution then resumes from restored loop
// counters. This replaces C3's stack-padding and address-preserving memory
// manager, which cannot exist in Go; see DESIGN.md for the substitution
// argument.
package statesave

import (
	"fmt"
	"sort"

	"c3/internal/wire"
)

// Section is a named piece of application state.
type Section interface {
	// Name returns the registration name, unique within a Registry.
	Name() string
	// Save appends the section's contents.
	Save(w *wire.Writer)
	// Load restores the section's contents.
	Load(r *wire.Reader) error
	// LiveBytes is the current size of the section's live data.
	LiveBytes() int
}

// Registry holds the ordered set of registered state sections for one rank.
type Registry struct {
	sections []Section
	byName   map[string]Section
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Section)}
}

// Register adds a custom section. It panics on duplicate names — a
// duplicate registration is a program structure bug, equivalent to C3's
// precompiler emitting conflicting descriptors.
func (g *Registry) Register(s Section) {
	if _, dup := g.byName[s.Name()]; dup {
		panic(fmt.Sprintf("statesave: duplicate section %q", s.Name()))
	}
	g.sections = append(g.sections, s)
	g.byName[s.Name()] = s
}

// Unregister removes a section from the registry — the Go analogue of the
// C3 runtime pruning its state description as variables leave scope. The
// section stops appearing in snapshots; with incremental checkpointing the
// next delta records a tombstone so recovery does not resurrect it from an
// older anchor. Unknown names are a no-op.
func (g *Registry) Unregister(name string) {
	if _, ok := g.byName[name]; !ok {
		return
	}
	delete(g.byName, name)
	for i, s := range g.sections {
		if s.Name() == name {
			g.sections = append(g.sections[:i], g.sections[i+1:]...)
			break
		}
	}
}

// Lookup returns the section with the given name.
func (g *Registry) Lookup(name string) (Section, bool) {
	s, ok := g.byName[name]
	return s, ok
}

// LiveBytes totals the live data across all sections.
func (g *Registry) LiveBytes() int {
	total := 0
	for _, s := range g.sections {
		total += s.LiveBytes()
	}
	return total
}

// Save serializes every registered section.
func (g *Registry) Save() []byte {
	w := wire.NewWriter(1024 + g.LiveBytes())
	w.U32(uint32(len(g.sections)))
	for _, s := range g.sections {
		w.String(s.Name())
		body := wire.NewWriter(64 + s.LiveBytes())
		s.Save(body)
		w.Bytes32(body.Bytes())
	}
	return w.Bytes()
}

// Load restores sections by name from a Save image. Sections present in the
// image but not registered are an error (the program shape diverged);
// registered sections missing from the image are left untouched.
func (g *Registry) Load(data []byte) error {
	r := wire.NewReader(data)
	n := r.Count(8) // minimum bytes per serialized section
	for i := 0; i < n; i++ {
		name := r.String()
		body := r.Bytes32()
		if r.Err() != nil {
			return fmt.Errorf("statesave: corrupt image: %w", r.Err())
		}
		s, ok := g.byName[name]
		if !ok {
			return fmt.Errorf("statesave: image has unregistered section %q", name)
		}
		if err := s.Load(wire.NewReader(body)); err != nil {
			return fmt.Errorf("statesave: section %q: %w", name, err)
		}
	}
	return r.Err()
}

// --- Scalar cells ---

// Int is a checkpointed integer cell (loop counters, phase indices).
type Int struct {
	name string
	v    int64
}

// Name implements Section.
func (c *Int) Name() string { return c.name }

// Save implements Section.
func (c *Int) Save(w *wire.Writer) { w.I64(c.v) }

// Load implements Section.
func (c *Int) Load(r *wire.Reader) error { c.v = r.I64(); return r.Err() }

// LiveBytes implements Section.
func (c *Int) LiveBytes() int { return 8 }

// Get returns the value.
func (c *Int) Get() int { return int(c.v) }

// Set stores the value.
func (c *Int) Set(v int) { c.v = int64(v) }

// Add increments the value by d and returns the new value.
func (c *Int) Add(d int) int { c.v += int64(d); return int(c.v) }

// Int registers (or returns the existing) integer cell.
func (g *Registry) Int(name string) *Int {
	if s, ok := g.byName[name]; ok {
		return s.(*Int)
	}
	c := &Int{name: name}
	g.Register(c)
	return c
}

// Float64 is a checkpointed float cell.
type Float64 struct {
	name string
	v    float64
}

// Name implements Section.
func (c *Float64) Name() string { return c.name }

// Save implements Section.
func (c *Float64) Save(w *wire.Writer) { w.F64(c.v) }

// Load implements Section.
func (c *Float64) Load(r *wire.Reader) error { c.v = r.F64(); return r.Err() }

// LiveBytes implements Section.
func (c *Float64) LiveBytes() int { return 8 }

// Get returns the value.
func (c *Float64) Get() float64 { return c.v }

// Set stores the value.
func (c *Float64) Set(v float64) { c.v = v }

// Float64 registers (or returns the existing) float cell.
func (g *Registry) Float64(name string) *Float64 {
	if s, ok := g.byName[name]; ok {
		return s.(*Float64)
	}
	c := &Float64{name: name}
	g.Register(c)
	return c
}

// Bool is a checkpointed boolean cell.
type Bool struct {
	name string
	v    bool
}

// Name implements Section.
func (c *Bool) Name() string { return c.name }

// Save implements Section.
func (c *Bool) Save(w *wire.Writer) { w.Bool(c.v) }

// Load implements Section.
func (c *Bool) Load(r *wire.Reader) error { c.v = r.Bool(); return r.Err() }

// LiveBytes implements Section.
func (c *Bool) LiveBytes() int { return 1 }

// Get returns the value.
func (c *Bool) Get() bool { return c.v }

// Set stores the value.
func (c *Bool) Set(v bool) { c.v = v }

// Bool registers (or returns the existing) boolean cell.
func (g *Registry) Bool(name string) *Bool {
	if s, ok := g.byName[name]; ok {
		return s.(*Bool)
	}
	c := &Bool{name: name}
	g.Register(c)
	return c
}

// --- Slice cells ---

// Float64s is a checkpointed []float64.
type Float64s struct {
	name string
	data []float64
}

// Name implements Section.
func (c *Float64s) Name() string { return c.name }

// Save implements Section.
func (c *Float64s) Save(w *wire.Writer) { w.F64s(c.data) }

// Load implements Section.
func (c *Float64s) Load(r *wire.Reader) error {
	vs := r.F64s()
	if r.Err() != nil {
		return r.Err()
	}
	if len(vs) == len(c.data) {
		copy(c.data, vs) // keep the app's slice identity
	} else {
		c.data = vs
	}
	return nil
}

// LiveBytes implements Section.
func (c *Float64s) LiveBytes() int { return 8 * len(c.data) }

// Data returns the backing slice.
func (c *Float64s) Data() []float64 { return c.data }

// Float64s registers (or returns the existing) float slice cell of length n.
func (g *Registry) Float64s(name string, n int) *Float64s {
	if s, ok := g.byName[name]; ok {
		return s.(*Float64s)
	}
	c := &Float64s{name: name, data: make([]float64, n)}
	g.Register(c)
	return c
}

// Int64s is a checkpointed []int64.
type Int64s struct {
	name string
	data []int64
}

// Name implements Section.
func (c *Int64s) Name() string { return c.name }

// Save implements Section.
func (c *Int64s) Save(w *wire.Writer) { w.I64s(c.data) }

// Load implements Section.
func (c *Int64s) Load(r *wire.Reader) error {
	vs := r.I64s()
	if r.Err() != nil {
		return r.Err()
	}
	if len(vs) == len(c.data) {
		copy(c.data, vs)
	} else {
		c.data = vs
	}
	return nil
}

// LiveBytes implements Section.
func (c *Int64s) LiveBytes() int { return 8 * len(c.data) }

// Data returns the backing slice.
func (c *Int64s) Data() []int64 { return c.data }

// Int64s registers (or returns the existing) int slice cell of length n.
func (g *Registry) Int64s(name string, n int) *Int64s {
	if s, ok := g.byName[name]; ok {
		return s.(*Int64s)
	}
	c := &Int64s{name: name, data: make([]int64, n)}
	g.Register(c)
	return c
}

// Bytes is a checkpointed []byte whose length may change between saves.
type Bytes struct {
	name string
	data []byte
}

// Name implements Section.
func (c *Bytes) Name() string { return c.name }

// Save implements Section.
func (c *Bytes) Save(w *wire.Writer) { w.Bytes32(c.data) }

// Load implements Section.
func (c *Bytes) Load(r *wire.Reader) error {
	c.data = r.Bytes32()
	return r.Err()
}

// LiveBytes implements Section.
func (c *Bytes) LiveBytes() int { return len(c.data) }

// Data returns the current contents.
func (c *Bytes) Data() []byte { return c.data }

// SetData replaces the contents.
func (c *Bytes) SetData(b []byte) { c.data = b }

// Bytes registers (or returns the existing) byte-slice cell.
func (g *Registry) Bytes(name string) *Bytes {
	if s, ok := g.byName[name]; ok {
		return s.(*Bytes)
	}
	c := &Bytes{name: name}
	g.Register(c)
	return c
}

// Custom adapts save/load functions into a Section, for state that does not
// fit the provided cells (the analogue of C3's per-type descriptors).
type Custom struct {
	name string
	save func(w *wire.Writer)
	load func(r *wire.Reader) error
	size func() int
}

// NewCustom builds a custom section.
func NewCustom(name string, size func() int, save func(w *wire.Writer), load func(r *wire.Reader) error) *Custom {
	return &Custom{name: name, save: save, load: load, size: size}
}

// Name implements Section.
func (c *Custom) Name() string { return c.name }

// Save implements Section.
func (c *Custom) Save(w *wire.Writer) { c.save(w) }

// Load implements Section.
func (c *Custom) Load(r *wire.Reader) error { return c.load(r) }

// LiveBytes implements Section.
func (c *Custom) LiveBytes() int { return c.size() }

// SortedNames returns the registered section names in sorted order, for
// inspection tools.
func (g *Registry) SortedNames() []string {
	names := make([]string, 0, len(g.sections))
	for _, s := range g.sections {
		names = append(names, s.Name())
	}
	sort.Strings(names)
	return names
}
