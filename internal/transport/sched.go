// Virtual schedule engine: a deterministic, seeded replacement for the Go
// scheduler's interleaving of rank goroutines.
//
// Problem: with n rank goroutines exchanging messages through the network,
// the order in which sends from different (src, dst) pairs interleave — and
// the timing of checkpoint pragmas relative to message arrivals — is decided
// by the runtime scheduler. A protocol bug that needs one specific
// interleaving to manifest surfaces only probabilistically (the seed's
// stress test diverged in ~40% of -race runs and 0% of plain runs), and a
// failing run cannot be re-executed for diagnosis.
//
// The engine fixes this by serializing all ranks onto a single virtual
// processor with explicitly scheduled context switches:
//
//   - Exactly one registered rank runs at a time (it holds the token).
//     Everything a rank does between two transport operations is invisible
//     to other ranks, so serializing the transport operations serializes
//     every cross-rank interaction.
//   - At every transport operation the engine may preempt the running rank
//     (seeded coin), and must switch when the rank blocks in Recv with an
//     empty queue. The choice of which READY rank runs next is seeded too.
//   - Message delivery is instantaneous under the token, so per-pair FIFO
//     is trivially preserved while cross-pair arrival order is exactly the
//     (seeded) order in which sends execute.
//   - Time is logical: one tick per scheduling step. Latency models are
//     ignored in virtual mode.
//
// Every scheduling choice is recorded as a Decision. A recorded Trace can
// be replayed — the engine then consumes decisions instead of drawing from
// the RNG — and edited: decisions that no longer match the execution (after
// shrinking removed some) fall back to a deterministic default policy, so
// any edited trace still yields a total, deterministic schedule. The
// schedule explorer in internal/sched uses this to shrink a failing seed's
// trace to a minimal interleaving.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrStalled is returned by receive operations when the virtual scheduler
// detects a global stall: every registered rank is blocked waiting for a
// message and no message can ever arrive. Under real scheduling this is a
// hang; the engine turns it into a diagnosable failure.
var ErrStalled = errors.New("transport: virtual schedule stalled (all ranks blocked)")

// DecisionKind labels one scheduling choice.
type DecisionKind uint8

// Decision kinds.
const (
	// DecisionStart grants the token for the first time, once every rank
	// has registered.
	DecisionStart DecisionKind = iota
	// DecisionPreempt is a voluntary context switch at a transport
	// operation: the running rank moves to READY and Next runs.
	DecisionPreempt
	// DecisionBlock is a forced switch: the running rank blocked in Recv
	// and Next runs.
	DecisionBlock
	// DecisionExit is a forced switch: the running rank finished and Next
	// runs (-1 when no rank remains).
	DecisionExit
	// DecisionPartition activates an armed partition event (Next is the
	// event's index in the armed plan, Rank is -1).
	DecisionPartition
	// DecisionHeal fires an armed heal event (same encoding as
	// DecisionPartition).
	DecisionHeal
)

func (k DecisionKind) String() string {
	switch k {
	case DecisionStart:
		return "start"
	case DecisionPreempt:
		return "preempt"
	case DecisionBlock:
		return "block"
	case DecisionExit:
		return "exit"
	case DecisionPartition:
		return "partition"
	case DecisionHeal:
		return "heal"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Decision is one recorded scheduling choice. Step is the value of the
// engine's operation counter when the choice was taken: every transport
// operation increments the counter exactly once, so (Step, Kind) identifies
// the choice point uniquely within a deterministic execution.
type Decision struct {
	Step int64
	Kind DecisionKind
	Rank int // rank that yielded (-1 for DecisionStart)
	Next int // rank granted the token (-1 when none remained)
}

// Trace is the decision sequence of one world's execution (one restart
// attempt). Replaying it against the same application reproduces the
// execution; replaying an edited copy yields the closest deterministic
// schedule (unmatched choice points use the default policy: keep running,
// and grant the lowest-numbered READY rank on forced switches).
type Trace struct {
	Seed      int64
	Decisions []Decision
}

// Clone returns a deep copy.
func (t *Trace) Clone() *Trace {
	return &Trace{Seed: t.Seed, Decisions: append([]Decision(nil), t.Decisions...)}
}

// rankState is a registered rank's scheduling state.
type rankState uint8

const (
	rsUnregistered rankState = iota
	rsReady                  // wants the token
	rsRunning                // holds the token
	rsBlocked                // waiting for a message (or a wake condition)
	rsDone                   // exited
)

// Scheduler is the virtual schedule engine for one Network. Install it with
// WithScheduler; the runtime must call Start from every rank goroutine
// before its first operation and Exit after its last.
type Scheduler struct {
	n            int
	preemptDenom int // preempt with probability 1/preemptDenom at each op

	mu    sync.Mutex
	cond  *sync.Cond
	rng   *rand.Rand
	state []rankState

	registered int
	stalled    bool

	step  int64 // transport-operation counter (logical time)
	seed  int64
	trace []Decision // recording (always on)

	replay    []Decision // consumed from the front when non-nil at creation
	replaying bool
	diverged  int // replay decisions that could not be honored

	// Armed partition plan (see ArmPartitions). partAt holds each event's
	// trigger step, drawn from the seeded RNG at arm time; in replay mode
	// triggers come from the trace's partition/heal decisions instead.
	partEvents []SchedPartitionEvent
	partAt     []int64
	partNext   int
	partApply  func(ev SchedPartitionEvent)
}

// SchedPartitionEvent is one partition-state change the engine fires at a
// scheduled step. Heal events clear every active rule; partition events
// install directed drop/hold rules (interpreted by the Network).
type SchedPartitionEvent struct {
	// Heal clears the active partition instead of installing one.
	Heal bool
	// Block lists the directed (from, to) pairs the partition severs.
	Block [][2]int
	// Hold buffers severed messages for delivery at the next heal instead
	// of dropping them (models TCP retransmission bridging a short split).
	Hold bool
	// At is the earliest trigger step; Jitter widens it by a seeded draw in
	// [0, Jitter], so sweeps explore different cut points.
	At     int64
	Jitter int64
}

// defaultPreemptDenom gives each transport operation a 1-in-4 chance of a
// voluntary context switch — frequent enough to explore interleavings
// within an iteration, rare enough that runs stay fast.
const defaultPreemptDenom = 4

// NewScheduler creates an engine for n ranks with the given seed.
func NewScheduler(n int, seed int64) *Scheduler {
	s := &Scheduler{
		n:            n,
		preemptDenom: defaultPreemptDenom,
		rng:          rand.New(rand.NewSource(seed)),
		state:        make([]rankState, n),
		seed:         seed,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// NewReplayScheduler creates an engine that re-executes a recorded trace.
// No randomness is consumed: choice points matching the next trace decision
// honor it; all others use the default policy.
func NewReplayScheduler(n int, t *Trace) *Scheduler {
	s := NewScheduler(n, t.Seed)
	s.replay = append([]Decision(nil), t.Decisions...)
	s.replaying = true
	return s
}

// ArmPartitions installs the partition plan: events fire in order, each at
// its seeded trigger step (At plus a draw in [0, Jitter]), apply is the
// network callback that installs or clears the rules. Every firing is
// recorded as a DecisionPartition/DecisionHeal trace decision, so replay
// reproduces the exact cut points and ddmin shrinking can delete an event
// (a deleted decision simply never fires on replay). Call before any rank
// registers; triggers are forced non-decreasing so the plan stays causal.
func (s *Scheduler) ArmPartitions(events []SchedPartitionEvent, apply func(ev SchedPartitionEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.partEvents = append([]SchedPartitionEvent(nil), events...)
	s.partApply = apply
	s.partAt = make([]int64, len(events))
	prev := int64(0)
	for i, ev := range events {
		at := ev.At
		if !s.replaying && ev.Jitter > 0 {
			at += s.rng.Int63n(ev.Jitter + 1)
		}
		if at < prev {
			at = prev
		}
		s.partAt[i] = at
		prev = at
	}
}

// partitionKind maps an event to its decision kind.
func partitionKind(ev SchedPartitionEvent) DecisionKind {
	if ev.Heal {
		return DecisionHeal
	}
	return DecisionPartition
}

// fireDuePartitions fires every armed event whose trigger has been reached
// (in record mode: trigger step passed; in replay mode: the trace's next
// decision is a partition/heal at or before the current step). Caller holds
// s.mu; the lock is released around the network callback so message pushes
// from the callback can re-enter the engine (wake). Returns whether any
// event fired.
func (s *Scheduler) fireDuePartitions() bool {
	fired := false
	for s.partNext < len(s.partEvents) {
		i := s.partNext
		if s.replaying {
			s.skipStaleReplay()
			if len(s.replay) == 0 || s.replay[0].Step > s.step {
				break
			}
			d := s.replay[0]
			if d.Kind != DecisionPartition && d.Kind != DecisionHeal {
				break
			}
			s.replay = s.replay[1:]
			if d.Next >= 0 && d.Next < len(s.partEvents) {
				i = d.Next
				if i < s.partNext {
					s.diverged++
					continue // already fired; stale duplicate
				}
			} else {
				s.diverged++
				continue
			}
		} else if s.partAt[i] > s.step {
			break
		}
		s.firePartition(i)
		fired = true
	}
	return fired
}

// fireStalledPartition advances logical time to the next armed event's
// trigger and fires it — the virtual analogue of "the world quiesces until
// the partition changes state". Called when no rank is READY but events
// remain; returns whether one fired. Caller holds s.mu.
func (s *Scheduler) fireStalledPartition() bool {
	if s.partNext >= len(s.partEvents) {
		return false
	}
	if s.replaying {
		s.skipStaleReplay()
		if len(s.replay) > 0 && (s.replay[0].Kind == DecisionPartition || s.replay[0].Kind == DecisionHeal) {
			d := s.replay[0]
			s.replay = s.replay[1:]
			if d.Next < s.partNext || d.Next >= len(s.partEvents) {
				s.diverged++
				return s.fireStalledPartition()
			}
			if d.Step > s.step {
				s.step = d.Step
			}
			s.firePartition(d.Next)
			return true
		}
		// The trace has no partition decision here (shrunk away, or it never
		// recorded one): fall back to the default policy — fire the next
		// armed event at its nominal trigger so the world stays live.
	}
	if s.partAt[s.partNext] > s.step {
		s.step = s.partAt[s.partNext]
	}
	s.firePartition(s.partNext)
	return true
}

// firePartition records and applies armed event i. Caller holds s.mu.
func (s *Scheduler) firePartition(i int) {
	ev := s.partEvents[i]
	s.trace = append(s.trace, Decision{Step: s.step, Kind: partitionKind(ev), Rank: -1, Next: i})
	if i >= s.partNext {
		s.partNext = i + 1
	}
	if s.partApply != nil {
		s.mu.Unlock()
		s.partApply(ev)
		s.mu.Lock()
	}
}

// WithScheduler installs a virtual schedule engine on the network. Latency
// models are ignored while a scheduler is installed (time is logical).
func WithScheduler(s *Scheduler) Option {
	return func(nw *Network) { nw.sched = s }
}

// Trace returns the recorded decision sequence so far.
func (s *Scheduler) Trace() *Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Trace{Seed: s.seed, Decisions: append([]Decision(nil), s.trace...)}
}

// Divergences reports how many replayed decisions could not be honored
// (their choice point never matched, or the chosen rank was not READY).
// Zero on a faithful replay of an unedited trace.
func (s *Scheduler) Divergences() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.diverged
}

// Steps returns the operation counter (logical time).
func (s *Scheduler) Steps() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.step
}

// Now is a logical clock for timer-based policies layered above the
// transport: one scheduling step is one millisecond of virtual time.
func (s *Scheduler) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Unix(0, s.step*int64(time.Millisecond))
}

// Stalled reports whether the engine declared a global stall.
func (s *Scheduler) Stalled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalled
}

// Start registers the calling goroutine as rank r and blocks until the
// engine grants it the token for the first time. Every rank must call Start
// before its first transport operation; the first grant is issued once all
// n ranks have registered.
func (s *Scheduler) Start(r int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state[r] = rsReady
	s.registered++
	if s.registered == s.n {
		first := s.choose(DecisionStart, -1)
		if first >= 0 {
			s.grant(first)
		}
		s.cond.Broadcast()
	}
	for s.state[r] != rsRunning {
		s.cond.Wait()
	}
}

// Exit deregisters rank r. If r holds the token it is passed on; if r was
// the last runnable rank, remaining blocked ranks are stalled out.
func (s *Scheduler) Exit(r int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	held := s.state[r] == rsRunning
	s.state[r] = rsDone
	if held {
		var next int
		for {
			next = s.choose(DecisionExit, r)
			if next >= 0 || !s.anyBlocked() || !s.fireStalledPartition() {
				break
			}
			// A fired event (heal releasing held messages) may have woken a
			// blocked rank; choose again.
		}
		if next >= 0 {
			s.grant(next)
		} else if s.anyBlocked() {
			s.declareStall()
		}
		s.cond.Broadcast()
	}
}

// point is the per-operation choice point: called (with the engine's lock
// held by no one) at the top of every transport operation executed by rank
// r. It increments logical time and may context-switch.
func (s *Scheduler) point(r int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.step++
	s.fireDuePartitions()
	if s.state[r] != rsRunning {
		// A non-registered caller (tooling goroutine) or a rank racing its
		// own kill; no scheduling decision to take.
		return
	}
	var preempt bool
	if s.replaying {
		preempt = s.replayWants(DecisionPreempt)
	} else {
		preempt = s.rng.Intn(s.preemptDenom) == 0
	}
	if !preempt {
		return
	}
	s.state[r] = rsReady
	// r itself is READY, so choose always finds a rank (possibly r again).
	s.grant(s.choose(DecisionPreempt, r))
	s.cond.Broadcast()
	for s.state[r] != rsRunning {
		s.cond.Wait()
	}
}

// block parks rank r until it is granted the token again (after wake marked
// it READY). It returns ErrStalled when the engine declared a global stall
// while r was parked.
func (s *Scheduler) block(r int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.step++
	s.fireDuePartitions()
	if s.state[r] != rsRunning {
		return nil
	}
	s.state[r] = rsBlocked
	for {
		next := s.choose(DecisionBlock, r)
		if next >= 0 {
			s.grant(next)
			s.cond.Broadcast()
			break
		}
		// Every rank is blocked. If partition events remain, the world is
		// only waiting for the partition to change state: jump logical time
		// to the next trigger and fire it (a heal releases held messages and
		// wakes their receivers), then choose again.
		if !s.fireStalledPartition() {
			s.declareStall()
			break
		}
	}
	for s.state[r] != rsRunning {
		s.cond.Wait()
	}
	if s.stalled {
		return ErrStalled
	}
	return nil
}

// wake marks a BLOCKED rank READY (a message arrived for it, or its
// endpoint was killed). The rank runs when the token next reaches it.
func (s *Scheduler) wake(r int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state[r] == rsBlocked {
		s.state[r] = rsReady
	}
}

// grant hands the token to rank r. Caller holds s.mu.
func (s *Scheduler) grant(r int) { s.state[r] = rsRunning }

// choose picks the next rank to run among READY ranks and records the
// decision. It returns -1 when no rank is READY. Caller holds s.mu.
func (s *Scheduler) choose(kind DecisionKind, from int) int {
	ready := s.readyRanks()
	var next int
	switch {
	case len(ready) == 0:
		next = -1
	case s.replaying:
		next = ready[0] // default policy: lowest READY rank
		if d, ok := s.replayTake(kind); ok {
			honored := false
			for _, r := range ready {
				if r == d.Next {
					next = d.Next
					honored = true
					break
				}
			}
			if !honored {
				s.diverged++
			}
		}
	default:
		next = ready[s.rng.Intn(len(ready))]
	}
	s.trace = append(s.trace, Decision{Step: s.step, Kind: kind, Rank: from, Next: next})
	return next
}

// readyRanks lists READY ranks in ascending order. Caller holds s.mu.
func (s *Scheduler) readyRanks() []int {
	var ready []int
	for r, st := range s.state {
		if st == rsReady {
			ready = append(ready, r)
		}
	}
	return ready
}

// replayWants reports whether the trace's next decision is (s.step, kind),
// without consuming it. Caller holds s.mu.
func (s *Scheduler) replayWants(kind DecisionKind) bool {
	s.skipStaleReplay()
	return len(s.replay) > 0 && s.replay[0].Step == s.step && s.replay[0].Kind == kind
}

// replayTake consumes the trace's next decision if it matches the current
// choice point. Caller holds s.mu.
func (s *Scheduler) replayTake(kind DecisionKind) (Decision, bool) {
	s.skipStaleReplay()
	if len(s.replay) > 0 && s.replay[0].Step == s.step && s.replay[0].Kind == kind {
		d := s.replay[0]
		s.replay = s.replay[1:]
		return d, true
	}
	return Decision{}, false
}

// skipStaleReplay drops decisions whose step has already passed — the
// execution diverged from the trace (expected after shrinking edits).
// Caller holds s.mu.
func (s *Scheduler) skipStaleReplay() {
	for len(s.replay) > 0 && s.replay[0].Step < s.step {
		s.replay = s.replay[1:]
		s.diverged++
	}
}

// anyBlocked reports whether any rank is BLOCKED. Caller holds s.mu.
func (s *Scheduler) anyBlocked() bool {
	for _, st := range s.state {
		if st == rsBlocked {
			return true
		}
	}
	return false
}

// declareStall poisons the engine: every blocked rank is woken to observe
// ErrStalled. Caller holds s.mu.
func (s *Scheduler) declareStall() {
	s.stalled = true
	for r, st := range s.state {
		if st == rsBlocked || st == rsReady {
			s.state[r] = rsRunning // poisoned grant; block() returns ErrStalled
		}
	}
	s.cond.Broadcast()
}
