package detect

// Partition-tolerance tests: the quorum commit rule (only a side holding a
// strict majority of the launch-time world may commit an epoch), contact-
// lease fencing on the minority side, rejoin-after-heal, and the stale
// suspicion-gossip regression.

import (
	"fmt"
	"testing"
	"time"

	"c3/internal/transport"
)

// splitPairs returns every directed (from, to) pair crossing the cut
// between groupA and the rest of an n-rank world. It mirrors
// cluster.SplitPairs, duplicated here because cluster imports detect.
func splitPairs(groupA []int, n int) [][2]int {
	inA := make(map[int]bool, len(groupA))
	for _, r := range groupA {
		inA[r] = true
	}
	var pairs [][2]int
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && inA[a] != inA[b] {
				pairs = append(pairs, [2]int{a, b})
			}
		}
	}
	return pairs
}

// containsAll reports whether sorted slice have includes every rank in want.
func containsAll(have, want []int) bool {
	set := make(map[int]bool, len(have))
	for _, r := range have {
		set[r] = true
	}
	for _, r := range want {
		if !set[r] {
			return false
		}
	}
	return true
}

// TestQuorumMatrix partitions every possible bipartition of worlds sized
// 3 through 7 and checks the quorum rule exhaustively: the side holding a
// strict majority (> n/2) of the launch-time world commits an epoch
// declaring the far side dead; the other side commits nothing — its
// coordinator stalls and its ranks fence. On an even split neither side
// has a majority and nobody ever commits.
func TestQuorumMatrix(t *testing.T) {
	// Every world shares the process, so bound how many run concurrently:
	// too many real-time detectors starve each other's heartbeat goroutines
	// into false suspicions (harmless for the assertions below, but noisy
	// and slow).
	sem := make(chan struct{}, 6)
	for n := 3; n <= 7; n++ {
		quorum := n/2 + 1
		// Enumerate each unordered bipartition once by keeping rank 0 in
		// group B: masks over ranks 1..n-1 choose group A.
		for mask := 1; mask < 1<<(n-1); mask++ {
			var groupA []int
			for r := 1; r < n; r++ {
				if mask&(1<<(r-1)) != 0 {
					groupA = append(groupA, r)
				}
			}
			var groupB []int
			for r := 0; r < n; r++ {
				if !containsAll(groupA, []int{r}) {
					groupB = append(groupB, r)
				}
			}
			name := fmt.Sprintf("n=%d/a=%v", n, groupA)
			n, groupA, groupB := n, groupA, groupB
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				sem <- struct{}{}
				defer func() { <-sem }()

				hb, phi := tuned(5*time.Millisecond, 7)
				w := newWorld(t, n, hb, phi)
				time.Sleep(10 * hb) // settle monitors
				w.nw.Partition(splitPairs(groupA, n), false)

				var majority, minority []int
				switch {
				case len(groupA) >= quorum:
					majority, minority = groupA, groupB
				case len(groupB) >= quorum:
					majority, minority = groupB, groupA
				}

				if majority == nil {
					// Even split: neither side can assemble a quorum, so no
					// epoch may ever commit anywhere; every rank loses
					// majority contact and fences.
					w.awaitFenced(t, append(append([]int(nil), groupA...), groupB...), 15*time.Second)
					for r := 0; r < n; r++ {
						if e := w.dets[r].Epoch(); e != 1 {
							t.Errorf("rank %d epoch = %d on even split, want 1 (no quorum anywhere)", r, e)
						}
					}
					return
				}

				// Majority side: an epoch declaring the whole far side dead
				// must commit. (⊇, not ==: a scheduling hiccup can fold a
				// transient same-side suspicion into the dead set before the
				// protest clears it.)
				deadline := time.Now().Add(15 * time.Second)
				for {
					done := true
					for _, r := range majority {
						if !containsAll(w.dets[r].Dead(), minority) {
							done = false
							break
						}
					}
					if done {
						break
					}
					if time.Now().After(deadline) {
						for _, r := range majority {
							t.Logf("rank %d: epoch=%d dead=%v suspected=%v",
								r, w.dets[r].Epoch(), w.dets[r].Dead(), w.dets[r].Suspected())
						}
						t.Fatalf("majority %v did not commit the far side %v dead", majority, minority)
					}
					time.Sleep(2 * time.Millisecond)
				}
				// Minority side: no commit, ever — its epoch never leaves 1.
				w.awaitFenced(t, minority, 15*time.Second)
				for _, r := range minority {
					if e := w.dets[r].Epoch(); e != 1 {
						t.Errorf("minority rank %d epoch = %d, want 1 (must not commit without quorum)", r, e)
					}
				}
				for _, r := range majority {
					if w.dets[r].Fenced() {
						t.Errorf("majority rank %d is fenced", r)
					}
				}
			})
		}
	}
}

// awaitFenced polls until every listed rank reports Fenced().
func (w *world) awaitFenced(t *testing.T, ranks []int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		ok := true
		for _, r := range ranks {
			if !w.dets[r].Fenced() {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			status := ""
			for _, r := range ranks {
				status += fmt.Sprintf(" rank%d:fenced=%v suspected=%v;", r, w.dets[r].Fenced(), w.dets[r].Suspected())
			}
			t.Fatalf("ranks %v not all fenced within %v:%s", ranks, within, status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMinorityFencesAndHealsOnRejoin: a 2-rank minority severed from a
// 5-rank world fences (contact lease expires below quorum) while the
// majority commits it dead; at the heal the minority unfences, adopts the
// newer epoch through the fenced-probe/state exchange, and every rank
// converges back to an empty dead set.
func TestMinorityFencesAndHealsOnRejoin(t *testing.T) {
	hb, phi := tuned(5*time.Millisecond, 8)
	w := newWorld(t, 5, hb, phi)
	time.Sleep(10 * hb)
	w.nw.Partition(splitPairs([]int{3, 4}, 5), false)

	w.awaitFenced(t, []int{3, 4}, 10*time.Second)
	for _, r := range []int{0, 1, 2} {
		if w.dets[r].Fenced() {
			t.Errorf("majority rank %d fenced during split", r)
		}
	}
	// Majority agrees the minority dead.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if containsAll(w.dets[0].Dead(), []int{3, 4}) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("majority never declared [3 4] dead: dead=%v", w.dets[0].Dead())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Minority committed nothing while split.
	for _, r := range []int{3, 4} {
		if e := w.dets[r].Epoch(); e != 1 {
			t.Fatalf("minority rank %d epoch = %d during split, want 1", r, e)
		}
	}

	w.nw.Heal()

	// Everyone converges: minority adopts the majority's epoch (its fenced
	// probes carry epoch 1; the majority replies with the newer state and
	// the hello broadcast un-deads the rank), fencing lifts, dead sets
	// empty out.
	deadline = time.Now().Add(15 * time.Second)
	for {
		ok := true
		for r := 0; r < 5; r++ {
			if len(w.dets[r].Dead()) != 0 || w.dets[r].Fenced() {
				ok = false
				break
			}
		}
		for _, r := range []int{3, 4} {
			if w.dets[r].Epoch() < 2 {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			for r := 0; r < 5; r++ {
				t.Logf("rank %d: epoch=%d dead=%v fenced=%v suspected=%v",
					r, w.dets[r].Epoch(), w.dets[r].Dead(), w.dets[r].Fenced(), w.dets[r].Suspected())
			}
			t.Fatal("world did not converge after heal")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// And stays converged (no suspicion/epoch oscillation from the rejoin).
	time.Sleep(30 * hb)
	for r := 0; r < 5; r++ {
		if dead := w.dets[r].Dead(); len(dead) != 0 {
			t.Errorf("rank %d dead = %v after settling, want none", r, dead)
		}
		if w.dets[r].Fenced() {
			t.Errorf("rank %d still fenced after heal", r)
		}
	}
}

// TestStaleSuspectGossipDropped: suspicion gossip is gated on the epoch
// number. A rank cleared by a newer epoch (here: rejoined after being
// agreed dead) must not be re-suspected by a reordered suspect frame from
// the superseded epoch — before the gate, the late frame re-entered the
// cleared rank into agreement and could commit it dead again.
func TestStaleSuspectGossipDropped(t *testing.T) {
	n := 4
	w := &world{nw: transport.NewNetwork(n), dets: make([]*Detector, n)}
	t.Cleanup(func() {
		for _, d := range w.dets {
			if d != nil {
				d.Close()
			}
		}
	})
	hb, phi := tuned(5*time.Millisecond, 6)
	for r := 0; r < 3; r++ {
		w.startRank(t, r, n, hb, phi)
	}
	// Boot without rank 3: epoch 2 commits it dead, then it joins and the
	// survivors clear it — exactly the "cleared by a newer epoch" state.
	w.awaitEpoch(t, []int{0, 1, 2}, 2, 10*time.Second)
	late := w.startRank(t, 3, n, hb, phi)
	if _, err := late.Join(5 * time.Second); err != nil {
		t.Fatalf("join: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cleared := true
		for _, r := range []int{0, 1, 2} {
			if len(w.dets[r].Dead()) != 0 {
				cleared = false
			}
		}
		if cleared {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors did not clear the rejoined rank")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Replay a suspicion of rank 3 from the superseded epoch 1, as a
	// reordered network would deliver it. The receiving coordinator must
	// drop it instead of re-opening agreement on the cleared rank.
	if err := w.nw.Send(transport.Message{
		From: 2, To: 0, Class: transport.Control, Payload: encodeSuspect(1, 3),
	}); err != nil {
		t.Fatalf("inject stale suspect: %v", err)
	}

	time.Sleep(20 * hb)
	for _, r := range []int{0, 1, 2, 3} {
		if e := w.dets[r].Epoch(); e != 2 {
			t.Errorf("rank %d epoch = %d after stale gossip, want 2 (no new agreement)", r, e)
		}
		if dead := w.dets[r].Dead(); len(dead) != 0 {
			t.Errorf("rank %d dead = %v after stale gossip, want none", r, dead)
		}
	}
}
