package bench

import (
	"testing"
	"time"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/stable"
)

// computeApp is a deterministic workload with real time between pragmas:
// each of the iters iterations "computes" for step (modeled as a sleep, so
// the available overlap window is exact), then hits a checkpoint pragma.
// The registered state is large enough that checkpoint writes are not
// trivial.
func computeApp(iters int, step time.Duration) func(cluster.Env) error {
	return func(env cluster.Env) error {
		st := env.State()
		it := st.Int("it")
		data := st.Float64s("data", 1<<13).Data()
		if _, err := env.Restore(); err != nil {
			return err
		}
		for it.Get() < iters {
			time.Sleep(step)
			data[it.Get()%len(data)] += 1
			it.Add(1)
			if err := env.Checkpoint(); err != nil {
				return err
			}
		}
		return nil
	}
}

// TestAsyncCheckpointCostBelowBlocking is the acceptance check for the
// async pipeline: on the same slow stable store and the same workload, the
// checkpoint overhead of asynchronous commit must be strictly below the
// blocking configuration's, because the stable-storage writes overlap the
// inter-checkpoint computation instead of stalling it.
func TestAsyncCheckpointCostBelowBlocking(t *testing.T) {
	const (
		ranks = 2
		iters = 8
		step  = 10 * time.Millisecond
		delay = 4 * time.Millisecond // per stable-storage write
	)
	measure := func(async bool) time.Duration {
		t.Helper()
		cfg := cluster.Config{
			Ranks:  ranks,
			App:    computeApp(iters, step),
			Store:  stable.NewDelayedStore(stable.NewMemStore(), delay, 0),
			Policy: ckpt.Policy{EveryNthPragma: 2, AsyncCommit: async},
		}
		res, err := cluster.Run(cfg)
		if err != nil {
			t.Fatalf("async=%v: %v", async, err)
		}
		if async {
			var n uint64
			for _, rs := range res.Stats {
				n += rs.Stats.AsyncCommits
			}
			if n == 0 {
				t.Fatal("async run took no checkpoints through the pipeline")
			}
		}
		return res.LastAttemptElapsed
	}

	// Three checkpoints fire (pragmas 2, 4, 6; the one at 8 starts after
	// the loop's work is done); each writes 7 sections + commit, so the
	// blocking run stalls the app for roughly 3*8*delay = 96ms that the
	// async run overlaps with the 20ms compute windows between lines.
	blocking := measure(false)
	async := measure(true)
	t.Logf("blocking=%v async=%v (compute floor ≈ %v)", blocking, async, time.Duration(iters)*step)
	if async >= blocking {
		t.Fatalf("async commit (%v) must beat blocking commit (%v) on a slow store", async, blocking)
	}
}
