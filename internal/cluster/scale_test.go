package cluster_test

import (
	"os"
	"sync"
	"testing"
	"time"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/sched"
	"c3/internal/stable"
)

// TestScaleThousandRankWholeGroupLoss is the two-level topology's
// acceptance run: a 1024-rank world partitioned into 32 checkpoint groups
// loses an entire group at once (a whole fault domain — chassis, switch),
// recovers from the surviving groups' shards plus the cross-group parity,
// and every rank's checksum matches the failure-free reference. The
// virtual scheduler (Seed) keeps the run deterministic; a flat store could
// not survive this at any size — a group of 32 swallows every +1/+2
// neighbor shard of its interior ranks.
//
// The run takes ~10 minutes of wall clock, so it only executes when
// C3_SCALE=1 (the CI scale-smoke job); TestScaleGroupedWholeGroupLoss
// below covers the same fault at a size every `go test ./...` carries.
func TestScaleThousandRankWholeGroupLoss(t *testing.T) {
	if os.Getenv("C3_SCALE") == "" {
		t.Skip("1024-rank world (~10 min): set C3_SCALE=1 to run")
	}
	const ranks = 1024
	const groupSize = 32
	const iters = 4

	rs, err := stable.NewCodec("rs", 3, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Failure-free reference.
	var ref sync.Map
	refStore := stable.NewReplicatedStore(ranks, stable.WithCodec(rs), stable.WithGroupSize(groupSize))
	defer refStore.Close()
	runScale(t, cluster.Config{
		Ranks: ranks, App: sched.StressApp(iters, &ref), Store: refStore,
		Policy: ckpt.Policy{EveryNthPragma: 2}, Seed: 1,
	})

	// Group 2 (ranks 64..95) dies as one fault domain.
	correlated := make([]int, 0, groupSize-1)
	for r := 65; r < 96; r++ {
		correlated = append(correlated, r)
	}
	var got sync.Map
	store := stable.NewReplicatedStore(ranks, stable.WithCodec(rs), stable.WithGroupSize(groupSize))
	defer store.Close()
	res := runScale(t, cluster.Config{
		Ranks: ranks, App: sched.StressApp(iters, &got), Store: store,
		Policy: ckpt.Policy{EveryNthPragma: 2}, Seed: 1,
		Failures: []cluster.FailureSpec{{Rank: 64, AtPragma: 3, Correlated: correlated}},
	})
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one whole-group failure, one recovery)", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok {
			t.Fatalf("rank %d has no result", r)
		}
		if want != gotv {
			t.Errorf("rank %d checksum diverged after whole-group loss: failure-free %v, recovered %v",
				r, want, gotv)
		}
	}
}

// TestScaleGroupedWholeGroupLoss is the tier-1-sized version of the same
// fault: 128 ranks in 8 groups of 16, one whole group killed at once,
// checksums gated against the failure-free reference.
func TestScaleGroupedWholeGroupLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("128-rank world: skipped in -short")
	}
	const ranks = 128
	const groupSize = 16
	const iters = 4

	rs, err := stable.NewCodec("rs", 3, 1)
	if err != nil {
		t.Fatal(err)
	}

	var ref sync.Map
	refStore := stable.NewReplicatedStore(ranks, stable.WithCodec(rs), stable.WithGroupSize(groupSize))
	defer refStore.Close()
	runScale(t, cluster.Config{
		Ranks: ranks, App: sched.StressApp(iters, &ref), Store: refStore,
		Policy: ckpt.Policy{EveryNthPragma: 2}, Seed: 1,
	})

	// Group 3 (ranks 48..63) dies as one fault domain.
	correlated := make([]int, 0, groupSize-1)
	for r := 49; r < 64; r++ {
		correlated = append(correlated, r)
	}
	var got sync.Map
	store := stable.NewReplicatedStore(ranks, stable.WithCodec(rs), stable.WithGroupSize(groupSize))
	defer store.Close()
	res := runScale(t, cluster.Config{
		Ranks: ranks, App: sched.StressApp(iters, &got), Store: store,
		Policy: ckpt.Policy{EveryNthPragma: 2}, Seed: 1,
		Failures: []cluster.FailureSpec{{Rank: 48, AtPragma: 3, Correlated: correlated}},
	})
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one whole-group failure, one recovery)", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, ok := got.Load(r)
		if !ok {
			t.Fatalf("rank %d has no result", r)
		}
		if want != gotv {
			t.Errorf("rank %d checksum diverged after whole-group loss: failure-free %v, recovered %v",
				r, want, gotv)
		}
	}
}

// runScale is run with the timeout widened for thousand-rank worlds.
func runScale(t *testing.T, cfg cluster.Config) *cluster.Result {
	t.Helper()
	type out struct {
		res *cluster.Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		r, e := cluster.Run(cfg)
		ch <- out{r, e}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("run failed: %v", o.err)
		}
		return o.res
	case <-time.After(8 * time.Minute):
		t.Fatal("scale run timed out")
		return nil
	}
}
