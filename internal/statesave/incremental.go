package statesave

import (
	"fmt"
	"hash/fnv"

	"c3/internal/wire"
)

// Incremental checkpointing support (the paper's Section 5 future work:
// "We are incorporating incremental checkpointing into our system, which
// will permit the system to save only those data that have been modified
// since the last checkpoint").
//
// The unit of change detection is the registered section: a section image
// is stored in a checkpoint only if its content differs from the previous
// checkpoint's, identified by an FNV-64a digest. A full snapshot anchors
// each chain; recovery loads the anchor and applies forward deltas.

// SectionImage is one section's serialized body plus its digest.
type SectionImage struct {
	Body   []byte
	Digest uint64
}

// Sections serializes every registered section individually, keyed by name.
func (g *Registry) Sections() map[string]SectionImage {
	out := make(map[string]SectionImage, len(g.sections))
	for _, s := range g.sections {
		w := wire.NewWriter(64 + s.LiveBytes())
		s.Save(w)
		h := fnv.New64a()
		h.Write(w.Bytes())
		out[s.Name()] = SectionImage{Body: w.Bytes(), Digest: h.Sum64()}
	}
	return out
}

// LoadSectionBodies restores sections from name-keyed bodies.
func (g *Registry) LoadSectionBodies(bodies map[string][]byte) error {
	for name, body := range bodies {
		s, ok := g.byName[name]
		if !ok {
			return fmt.Errorf("statesave: image has unregistered section %q", name)
		}
		if err := s.Load(wire.NewReader(body)); err != nil {
			return fmt.Errorf("statesave: section %q: %w", name, err)
		}
	}
	return nil
}

// DiffSections returns the sections of cur whose digests differ from prev
// (plus sections absent from prev), and the names present in prev but gone
// from cur — the tombstones. Omitting the tombstones from a delta is
// unsound: MergeSections would overlay the delta onto a base that still
// contains the removed section, silently resurrecting state the
// application had dropped by the time the line was taken.
func DiffSections(prev, cur map[string]SectionImage) (delta map[string]SectionImage, removed []string) {
	delta = make(map[string]SectionImage)
	for name, img := range cur {
		if p, ok := prev[name]; !ok || p.Digest != img.Digest {
			delta[name] = img
		}
	}
	for name := range prev {
		if _, ok := cur[name]; !ok {
			removed = append(removed, name)
		}
	}
	sortStrings(removed)
	return delta, removed
}

// sortStrings is an allocation-free insertion sort (the section counts here
// are tiny).
func sortStrings(names []string) {
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
}

// EncodeIncrement serializes a (possibly partial) section set with its kind,
// base-line reference, and the tombstones of sections removed since the
// base line (nil for full snapshots).
func EncodeIncrement(full bool, baseLine uint64, sections map[string]SectionImage, removed []string) []byte {
	w := wire.NewWriter(256)
	w.Bool(full)
	w.U64(baseLine)
	w.U32(uint32(len(sections)))
	// Deterministic order for reproducible checkpoints.
	names := make([]string, 0, len(sections))
	for n := range sections {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		w.String(n)
		w.U64(sections[n].Digest)
		w.Bytes32(sections[n].Body)
	}
	w.U32(uint32(len(removed)))
	for _, n := range removed {
		w.String(n)
	}
	return w.Bytes()
}

// DecodeIncrement parses an EncodeIncrement image.
func DecodeIncrement(data []byte) (full bool, baseLine uint64, sections map[string]SectionImage, removed []string, err error) {
	r := wire.NewReader(data)
	full = r.Bool()
	baseLine = r.U64()
	n := r.Count(16) // minimum bytes per serialized section
	sections = make(map[string]SectionImage, n)
	for i := 0; i < n; i++ {
		name := r.String()
		digest := r.U64()
		body := r.Bytes32()
		if r.Err() != nil {
			return false, 0, nil, nil, fmt.Errorf("statesave: corrupt incremental image: %w", r.Err())
		}
		sections[name] = SectionImage{Body: body, Digest: digest}
	}
	nr := r.Count(4) // minimum bytes per tombstone name
	for i := 0; i < nr; i++ {
		name := r.String()
		if r.Err() != nil {
			return false, 0, nil, nil, fmt.Errorf("statesave: corrupt incremental tombstones: %w", r.Err())
		}
		removed = append(removed, name)
	}
	return full, baseLine, sections, removed, r.Err()
}

// MergeSections overlays delta onto base and applies the delta's
// tombstones, returning a new map: the state AT the delta's line.
func MergeSections(base, delta map[string]SectionImage, removed []string) map[string]SectionImage {
	out := make(map[string]SectionImage, len(base)+len(delta))
	for n, img := range base {
		out[n] = img
	}
	for n, img := range delta {
		out[n] = img
	}
	for _, n := range removed {
		delete(out, n)
	}
	return out
}

// TotalBytes sums section body sizes.
func TotalBytes(sections map[string]SectionImage) int {
	t := 0
	for _, img := range sections {
		t += len(img.Body)
	}
	return t
}
