package tcp

// Partition fault-model tests for the real TCP mesh: blackhole (drop) and
// short-split (hold) rules, asymmetric cuts, the Heal flush, the
// rule-vs-redial race that used to leak a half-open probe connection, and
// the generation handshake that keeps frames from vanishing into a stale
// listener during an attempt transition.

import (
	"fmt"
	"testing"
	"time"

	"c3/internal/transport"
)

// setPartitionAll installs the same rule set on every mesh, the way each
// cluster node applies a global partition event.
func setPartitionAll(meshes []*Mesh, block [][2]int, hold bool) {
	for _, m := range meshes {
		m.SetPartition(block, hold)
	}
}

func healAll(meshes []*Mesh) {
	for _, m := range meshes {
		m.Heal()
	}
}

// awaitMsg polls the mesh's local port for one message. Unlike recvOne it
// leaks no blocked Recv goroutine on timeout, so a failed wait cannot
// steal a later frame from the same mesh.
func awaitMsg(t *testing.T, m *Mesh, timeout time.Duration) (transport.Message, bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		msg, ok, err := m.port.TryRecv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if ok {
			return msg, true
		}
		if time.Now().After(deadline) {
			return transport.Message{}, false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertSilent waits out the window and fails if anything was delivered.
func assertSilent(t *testing.T, m *Mesh, window time.Duration) {
	t.Helper()
	time.Sleep(window)
	if msg, ok, _ := m.port.TryRecv(); ok {
		t.Fatalf("unexpected delivery across the cut: %v", msg)
	}
}

func TestMeshPartitionDropAndHeal(t *testing.T) {
	meshes := newTestMeshes(t, 3)
	// Sever rank 2 from ranks 0 and 1, both directions, blackhole mode.
	cut := [][2]int{{0, 2}, {2, 0}, {1, 2}, {2, 1}}
	setPartitionAll(meshes, cut, false)

	if err := meshes[0].Send(transport.Message{From: 0, To: 2, Payload: testPayload("a")}); err != nil {
		t.Fatalf("send into cut: %v", err)
	}
	if err := meshes[2].Send(transport.Message{From: 2, To: 0, Payload: testPayload("b")}); err != nil {
		t.Fatalf("send out of cut: %v", err)
	}
	assertSilent(t, meshes[2], 300*time.Millisecond)
	assertSilent(t, meshes[0], 100*time.Millisecond)
	if d := meshes[0].Stats().MessagesDropped; d == 0 {
		t.Error("drop-mode sever not counted in MessagesDropped")
	}
	// The same-side pair is untouched.
	if err := meshes[0].Send(transport.Message{From: 0, To: 1, Payload: testPayload("same-side")}); err != nil {
		t.Fatal(err)
	}
	if msg, ok := awaitMsg(t, meshes[1], 5*time.Second); !ok || string(msg.Payload.(testPayload)) != "same-side" {
		t.Fatalf("same-side traffic disturbed by the cut: %v %v", msg, ok)
	}

	healAll(meshes)
	// Dropped frames are gone for good; fresh traffic flows again. Per-pair
	// FIFO means that if the severed "b" frame had secretly crossed, it
	// would arrive ahead of "after" — so checking the first frame also
	// re-checks the blackhole.
	if err := meshes[2].Send(transport.Message{From: 2, To: 0, Payload: testPayload("after")}); err != nil {
		t.Fatal(err)
	}
	if msg, ok := awaitMsg(t, meshes[0], 5*time.Second); !ok || string(msg.Payload.(testPayload)) != "after" {
		t.Fatalf("traffic did not resume after heal: %v %v", msg, ok)
	}
}

func TestMeshPartitionAsymmetric(t *testing.T) {
	meshes := newTestMeshes(t, 2)
	// Sever only 1 -> 0: rank 1 still hears rank 0 but cannot answer.
	setPartitionAll(meshes, [][2]int{{1, 0}}, false)

	if err := meshes[0].Send(transport.Message{From: 0, To: 1, Payload: testPayload("forward")}); err != nil {
		t.Fatal(err)
	}
	if msg, ok := awaitMsg(t, meshes[1], 5*time.Second); !ok || string(msg.Payload.(testPayload)) != "forward" {
		t.Fatalf("open direction blocked by asymmetric rule: %v %v", msg, ok)
	}
	if err := meshes[1].Send(transport.Message{From: 1, To: 0, Payload: testPayload("reverse")}); err != nil {
		t.Fatal(err)
	}
	assertSilent(t, meshes[0], 300*time.Millisecond)
}

func TestMeshPartitionHoldFlushesInOrder(t *testing.T) {
	meshes := newTestMeshes(t, 2)
	setPartitionAll(meshes, [][2]int{{0, 1}, {1, 0}}, true)

	const k = 10
	for i := 0; i < k; i++ {
		p := testPayload(fmt.Sprintf("held-%02d", i))
		if err := meshes[0].Send(transport.Message{From: 0, To: 1, Payload: p}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	assertSilent(t, meshes[1], 300*time.Millisecond)

	healAll(meshes)
	for i := 0; i < k; i++ {
		msg, ok := awaitMsg(t, meshes[1], 5*time.Second)
		if !ok {
			t.Fatalf("held frame %d never flushed at heal", i)
		}
		want := fmt.Sprintf("held-%02d", i)
		if got := string(msg.Payload.(testPayload)); got != want {
			t.Fatalf("heal flush reordered: got %q, want %q", got, want)
		}
	}
}

// TestMeshWriteUnderRuleClosesProbeConn is the regression test for the
// redial-vs-rule race: a partition rule installed between Send's fast-path
// check and the (re)dial inside write() used to leave the freshly dialed
// probe connection half-open behind the rule. write() must close it, leak
// nothing, and — under a hold rule — still queue the frame for the Heal
// flush. Calling write() directly models the send that was already past
// the fast-path check when the rule landed.
func TestMeshWriteUnderRuleClosesProbeConn(t *testing.T) {
	meshes := newTestMeshes(t, 2)
	frame, err := encodeFrame(meshes[0].gen, transport.Message{From: 0, To: 1, Payload: testPayload("late")})
	if err != nil {
		t.Fatal(err)
	}

	// Drop mode: the frame vanishes and so must the probe connection.
	setPartitionAll(meshes, [][2]int{{0, 1}}, false)
	if meshes[0].write(1, frame) {
		t.Fatal("write reported success across a drop rule")
	}
	if open := meshes[0].openOutbound(); open != 0 {
		t.Fatalf("drop-mode write leaked %d outbound connection(s)", open)
	}

	// Hold mode: the frame is captured for the flush, connection still closed.
	setPartitionAll(meshes, [][2]int{{0, 1}}, true)
	if !meshes[0].write(1, frame) {
		t.Fatal("hold-mode write did not capture the frame")
	}
	if open := meshes[0].openOutbound(); open != 0 {
		t.Fatalf("hold-mode write leaked %d outbound connection(s)", open)
	}
	healAll(meshes)
	if msg, ok := awaitMsg(t, meshes[1], 5*time.Second); !ok || string(msg.Payload.(testPayload)) != "late" {
		t.Fatalf("held frame lost across heal: %v %v", msg, ok)
	}
}

// TestMeshHandshakeRedialAcrossRebind: during an attempt transition the
// peer's address is briefly owned by the previous generation's listener.
// Without the dial-time generation handshake the old listener accepted the
// connection and silently discarded every frame (its generation filter),
// losing fire-and-forget collective traffic. With it, the stale listener
// refuses the handshake and the dialer keeps retrying inside its window
// until the new-generation mesh rebinds — the frame must arrive.
func TestMeshHandshakeRedialAcrossRebind(t *testing.T) {
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0"}
	stale, err := New(1, addrs, WithGeneration(1))
	if err != nil {
		t.Fatal(err)
	}
	addrs[1] = stale.Addr()
	m0, err := New(0, addrs, WithGeneration(2), WithDialWindow(8*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer m0.Close()
	addrs[0] = m0.Addr()

	sent := make(chan error, 1)
	go func() {
		sent <- m0.Send(transport.Message{From: 0, To: 1, Payload: testPayload("cross-gen")})
	}()

	// Let the sender run into the stale listener's refusal a few times,
	// then perform the rebind the new attempt would do.
	time.Sleep(300 * time.Millisecond)
	stale.Close()
	var fresh *Mesh
	for deadline := time.Now().Add(5 * time.Second); ; {
		fresh, err = New(1, addrs, WithGeneration(2))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addrs[1], err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer fresh.Close()

	if err := <-sent; err != nil {
		t.Fatalf("send: %v", err)
	}
	msg, ok := awaitMsg(t, fresh, 10*time.Second)
	if !ok {
		t.Fatal("frame lost across the generation rebind (handshake retry failed)")
	}
	if got := string(msg.Payload.(testPayload)); got != "cross-gen" {
		t.Fatalf("got %q, want %q", got, "cross-gen")
	}
}
