package trace

import "testing"

// The record path costs on the order of tens of nanoseconds per event;
// these benchmarks put a number on it (and on the disabled floor the
// -notrace overhead measurement compares against).

func BenchmarkEmit(b *testing.B) {
	r := New(DefaultRing)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(0, KindGossip, 0, uint64(i))
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	r := New(DefaultRing)
	r.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(0, KindGossip, 0, uint64(i))
	}
}

func BenchmarkSpan(b *testing.B) {
	r := New(DefaultRing)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Begin(0, KindCommit, 0, 0)
		sp.End(uint64(i))
	}
}

func BenchmarkSendRecvEdge(b *testing.B) {
	r := New(DefaultRing)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := r.Send(0, 1, 64)
		r.Recv(1, 0, ctx, 64)
	}
}

func BenchmarkEmitParallel(b *testing.B) {
	r := New(DefaultRing)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Emit(0, KindGossip, 0, 1)
		}
	})
}
