package stable

import (
	"testing"
)

// storesUnderTest builds each Store implementation that holds data.
func storesUnderTest(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":  NewMemStore(),
		"disk": disk,
	}
}

func TestCommitVisibility(t *testing.T) {
	for name, store := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			ck, err := store.Begin(3, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := ck.WriteSection("app", []byte("state-v1")); err != nil {
				t.Fatal(err)
			}
			// Uncommitted checkpoints are invisible.
			if _, ok, _ := store.LastCommitted(3); ok {
				t.Fatal("uncommitted checkpoint visible")
			}
			if _, err := store.Open(3, 1); err == nil {
				t.Fatal("open of uncommitted checkpoint succeeded")
			}
			if err := ck.Commit(); err != nil {
				t.Fatal(err)
			}
			v, ok, err := store.LastCommitted(3)
			if err != nil || !ok || v != 1 {
				t.Fatalf("committed = (%d,%v,%v)", v, ok, err)
			}
			snap, err := store.Open(3, 1)
			if err != nil {
				t.Fatal(err)
			}
			defer snap.Close()
			data, err := snap.ReadSection("app")
			if err != nil || string(data) != "state-v1" {
				t.Fatalf("read = %q, %v", data, err)
			}
			names, err := snap.Sections()
			if err != nil || len(names) != 1 || names[0] != "app" {
				t.Fatalf("sections = %v, %v", names, err)
			}
		})
	}
}

func TestLastCommittedPicksNewest(t *testing.T) {
	for name, store := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			for v := 1; v <= 3; v++ {
				ck, _ := store.Begin(0, v)
				_ = ck.WriteSection("s", []byte{byte(v)})
				if err := ck.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			// An uncommitted newer version must not win.
			ck, _ := store.Begin(0, 4)
			_ = ck.WriteSection("s", []byte{4})
			v, ok, err := store.LastCommitted(0)
			if err != nil || !ok || v != 3 {
				t.Fatalf("last = (%d,%v,%v)", v, ok, err)
			}
			_ = ck.Abort()
		})
	}
}

func TestRetire(t *testing.T) {
	for name, store := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			for v := 1; v <= 3; v++ {
				ck, _ := store.Begin(0, v)
				_ = ck.WriteSection("s", []byte{byte(v)})
				_ = ck.Commit()
			}
			if err := store.Retire(0, 3); err != nil {
				t.Fatal(err)
			}
			if _, err := store.Open(0, 2); err == nil {
				t.Fatal("retired version still opens")
			}
			if _, err := store.Open(0, 3); err != nil {
				t.Fatalf("kept version lost: %v", err)
			}
		})
	}
}

func TestBeginClearsStale(t *testing.T) {
	for name, store := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			ck, _ := store.Begin(1, 7)
			_ = ck.WriteSection("old", []byte("junk"))
			// A crashed process never commits; a later attempt re-begins
			// the same version.
			ck2, err := store.Begin(1, 7)
			if err != nil {
				t.Fatal(err)
			}
			_ = ck2.WriteSection("app", []byte("fresh"))
			if err := ck2.Commit(); err != nil {
				t.Fatal(err)
			}
			snap, err := store.Open(1, 7)
			if err != nil {
				t.Fatal(err)
			}
			defer snap.Close()
			if _, err := snap.ReadSection("old"); err == nil {
				t.Fatal("stale section survived Begin")
			}
		})
	}
}

func TestNullStoreCountsAndForgets(t *testing.T) {
	s := NewNullStore()
	ck, _ := s.Begin(0, 1)
	_ = ck.WriteSection("app", make([]byte, 1000))
	_ = ck.Commit()
	if s.BytesWritten() != 1000 {
		t.Fatalf("bytes %d", s.BytesWritten())
	}
	if _, ok, _ := s.LastCommitted(0); ok {
		t.Fatal("null store admits to having data")
	}
	if _, err := s.Open(0, 1); err == nil {
		t.Fatal("null store opened a checkpoint")
	}
}

func TestMemStoreBytesWritten(t *testing.T) {
	s := NewMemStore()
	ck, _ := s.Begin(0, 1)
	_ = ck.WriteSection("a", make([]byte, 10))
	_ = ck.WriteSection("b", make([]byte, 20))
	if s.BytesWritten() != 30 {
		t.Fatalf("bytes %d", s.BytesWritten())
	}
}

func TestGlobalLine(t *testing.T) {
	if v, ok := GlobalLine([]int{3, 5, 4}, []bool{true, true, true}); !ok || v != 3 {
		t.Fatalf("line = %d, %v", v, ok)
	}
	if _, ok := GlobalLine([]int{3, 5}, []bool{true, false}); ok {
		t.Fatal("missing rank should yield no line")
	}
}

func TestDiskSectionNameSanitization(t *testing.T) {
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ck, _ := disk.Begin(0, 1)
	if err := ck.WriteSection("../../evil name", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := ck.Commit(); err != nil {
		t.Fatal(err)
	}
	snap, err := disk.Open(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if _, err := snap.ReadSection("../../evil name"); err != nil {
		t.Fatalf("sanitized section not readable back: %v", err)
	}
}
