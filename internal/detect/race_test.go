//go:build race

package detect

// raceEnabled reports that this test binary was built with -race: the
// detector's goroutines run several times slower and the Go scheduler
// preempts more coarsely, so timing-sensitive tests widen their margins
// (see tuned in detect_test.go).
const raceEnabled = true
