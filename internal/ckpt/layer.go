package ckpt

import (
	"fmt"
	"sync/atomic"
	"time"

	"c3/internal/mpi"
	"c3/internal/stable"
	"c3/internal/statesave"
)

// Policy decides when a checkpoint pragma actually takes a checkpoint. Per
// the paper, "some of these pragmas will force checkpoints to be taken at
// that point, while other pragmas will trigger a checkpoint only if a timer
// has expired or if some other process has initiated a global checkpoint."
// The join-if-others-started rule is always active.
type Policy struct {
	// EveryNthPragma forces a checkpoint at every n-th pragma encountered
	// (0 disables count-based checkpoints).
	EveryNthPragma int
	// Interval takes a checkpoint when this much time has passed since the
	// previous one (0 disables timer-based checkpoints).
	Interval time.Duration
	// AsyncCommit enables the asynchronous commit pipeline: checkpoint
	// sections are captured in memory and written to stable storage by a
	// per-rank background committer, so the application resumes immediately
	// after local capture. A FIFO single-worker pipeline preserves the
	// recovery-line ordering (line k is durable before line k+1 commits),
	// and Restore/Sync fence on the pipeline before reading the store.
	AsyncCommit bool
}

// Config configures a protocol layer.
type Config struct {
	// Store is the stable storage checkpoints are written to.
	Store stable.Store
	// State is the application's registered state (saved at each line).
	State *statesave.Registry
	// Heap, if non-nil, is the checkpointable heap; it is registered as a
	// state section automatically.
	Heap *statesave.Heap
	// Policy controls pragma firing.
	Policy Policy
	// WideHeaders selects the 9-byte full-epoch piggyback codec instead of
	// the 1-byte (3-bit) codec; used by the piggyback ablation.
	WideHeaders bool
	// LogAllIntraSignatures logs the signature of every intra-epoch message
	// received during non-deterministic logging, as in the paper's Figure 4
	// pseudo-code, instead of only wildcard receives as in the paper's
	// prose. The default (false) follows the prose.
	LogAllIntraSignatures bool
	// FullCheckpointEvery enables incremental checkpointing (the paper's
	// Section 5 future work): application-state sections are saved only
	// when their contents changed, with a full snapshot anchoring every
	// k-th line. 0 or 1 disables it (every checkpoint is full).
	FullCheckpointEvery int
	// Clock abstracts time for the timer policy; nil means time.Now.
	Clock func() time.Time
	// Deterministic declares that the layer runs under the virtual schedule
	// engine (cluster.Config.Seed / trace replay): the async commit pipeline
	// is driven inline from the rank's own protocol operations instead of a
	// worker goroutine, so durability timing is a pure function of the
	// schedule. Callers should also supply a logical Clock.
	Deterministic bool
}

// Layer is the per-process coordination layer: the C3 runtime that sits
// between the application and the MPI library.
type Layer struct {
	p    *mpi.Proc
	n    int
	rank int
	cfg  Config

	codec Codec
	store stable.Store
	state *statesave.Registry
	heap  *statesave.Heap

	ctrl *mpi.Comm // private communicator for protocol control messages

	mode  Mode
	epoch uint64

	// Per-world-rank counters (paper Section 3.1).
	sent       []uint64 // messages sent this epoch
	received   []uint64 // intra-epoch messages received this epoch
	lateRecvd  []uint64 // late messages received for the line in progress
	earlyRecvd []uint64 // early messages received (next epoch's intra count)

	// Checkpoint-Initiated bookkeeping for the line in progress.
	started      []bool
	startedCount int
	expectedLate []int64 // -1 until the sender's control message arrives

	// Control messages for the *next* line arriving before this process
	// starts it ("at least one other node has started a checkpoint").
	nextStarted      []bool
	nextStartedCount int
	nextExpected     []int64

	earlyReg *EarlyRegistry
	lateReg  *LateRegistry
	wasEarly *WasEarly
	results  *ResultLog

	comms *CommTable
	types *TypeTable
	ops   *OpTable
	reqs  *ReqTable

	world *WComm

	pending     stable.Checkpoint
	pendingLine uint64

	// Asynchronous commit pipeline state (Policy.AsyncCommit). pendingJob
	// accumulates the serialized sections of the line in progress;
	// pendingRetire defers the garbage-collection floor to the committer.
	committer     *committer
	pendingJob    *commitJob
	pendingRetire int

	// Incremental checkpointing state: the previous line's section images.
	lastSections map[string]statesave.SectionImage

	// pendingBytes is the raw section bytes of the line in progress — the
	// StoredBytes fallback for stores that do not report a footprint.
	pendingBytes uint64

	pragmaCount  int
	lastCkptTime time.Time
	clock        func() time.Time

	// extCheckpoint is the operator's checkpoint-now request (ops control
	// plane): the next pragma fires regardless of policy. Atomic because
	// RequestCheckpoint is called from outside the MPI goroutine.
	extCheckpoint atomic.Bool

	stats Stats
	err   error // sticky fatal protocol error
}

// Stats aggregates protocol activity for the overhead experiments.
type Stats struct {
	Sends            uint64
	Recvs            uint64
	PiggybackBytes   uint64
	ControlMessages  uint64
	LateLogged       uint64
	LateLoggedBytes  uint64
	EarlyRecorded    uint64
	SigLogged        uint64
	ReplayedLate     uint64
	PinnedWildcards  uint64
	SuppressedSends  uint64
	ResultsLogged    uint64
	ResultsReplayed  uint64
	CheckpointsTaken uint64
	CheckpointBytes  uint64
	// StoredBytes is what the checkpoints actually occupy at stable
	// storage across the world: the local copy plus replica shards and
	// parity, as reported by the store (stable.StoredSizer). For plain
	// stores it equals CheckpointBytes; for the diskless replicated
	// stores StoredBytes/CheckpointBytes is the codec's storage-overhead
	// ratio (3x for dup +1/+2, (k+m)/k for the erasure codecs).
	StoredBytes     uint64
	Restores        uint64
	StartDuration   time.Duration
	CommitDuration  time.Duration
	RestoreDuration time.Duration
	// Async-commit pipeline counters (zero when Policy.AsyncCommit is off).
	AsyncCommits       uint64        // lines committed by the background worker
	AsyncWriteDuration time.Duration // store time spent off the critical path
	CommitStallLatency time.Duration // app time blocked on the full pipeline
}

// New creates the protocol layer for one rank. It is collective: every rank
// of the world must call New concurrently, because the layer duplicates the
// world communicator for its control plane.
func New(p *mpi.Proc, cfg Config) (*Layer, error) {
	if cfg.Store == nil {
		cfg.Store = stable.NewMemStore()
	}
	if cfg.State == nil {
		cfg.State = statesave.NewRegistry()
	}
	if cfg.Heap != nil {
		if _, ok := cfg.State.Lookup("__heap"); !ok {
			cfg.State.Register(cfg.Heap.Section())
		}
	}
	clock := cfg.Clock
	if clock == nil {
		// The single sanctioned wall-clock injection point: every other use
		// in governed code must flow through this clock.
		clock = time.Now //c3lint:allow determinism cfg.Clock fallback; this IS the injection point
	}
	n := p.Size()
	l := &Layer{
		p:     p,
		n:     n,
		rank:  p.Rank(),
		cfg:   cfg,
		store: cfg.Store,
		state: cfg.State,
		heap:  cfg.Heap,
		mode:  ModeRun,

		sent:         make([]uint64, n),
		received:     make([]uint64, n),
		lateRecvd:    make([]uint64, n),
		earlyRecvd:   make([]uint64, n),
		started:      make([]bool, n),
		expectedLate: newExpected(n),
		nextStarted:  make([]bool, n),
		nextExpected: newExpected(n),

		earlyReg: NewEarlyRegistry(),
		lateReg:  NewLateRegistry(),
		wasEarly: NewWasEarly(),
		results:  NewResultLog(),

		types: NewTypeTable(),
		ops:   NewOpTable(),
		reqs:  NewReqTable(),

		clock:        clock,
		lastCkptTime: clock(),
	}
	if cfg.WideHeaders {
		l.codec = WideCodec{}
	} else {
		l.codec = NarrowCodec{}
	}
	ctrl, err := p.CommWorld().Dup()
	if err != nil {
		return nil, fmt.Errorf("ckpt: create control communicator: %w", err)
	}
	l.ctrl = ctrl
	l.comms = NewCommTable(p.CommWorld())
	l.world = &WComm{l: l, c: p.CommWorld(), handle: HandleWorld}
	if cfg.Policy.AsyncCommit {
		if cfg.Deterministic {
			l.committer = newVirtualCommitter(l.store, l.rank, clock)
		} else {
			l.committer = newCommitter(l.store, l.rank, clock)
		}
	}
	return l, nil
}

func newExpected(n int) []int64 {
	e := make([]int64, n)
	for i := range e {
		e[i] = -1
	}
	return e
}

// World returns the wrapped world communicator.
func (l *Layer) World() *WComm { return l.world }

// Rank returns the process's world rank.
func (l *Layer) Rank() int { return l.rank }

// Size returns the world size.
func (l *Layer) Size() int { return l.n }

// Mode returns the current protocol mode.
func (l *Layer) Mode() Mode { return l.mode }

// Epoch returns the current epoch number.
func (l *Layer) Epoch() uint64 { return l.epoch }

// Stats returns a copy of the layer's counters, merged with the background
// committer's (which advance concurrently while a commit is in flight).
func (l *Layer) Stats() Stats {
	st := l.stats
	if c := l.committer; c != nil {
		c.mu.Lock()
		st.AsyncCommits = c.asyncCommits
		st.AsyncWriteDuration = c.writeDuration
		st.CommitStallLatency = c.stallDuration
		st.StoredBytes += c.storedBytes
		c.mu.Unlock()
	}
	return st
}

// DrainCommits is the commit fence: it blocks until every enqueued
// recovery line is durable at the stable store, returning the first store
// error. It is a no-op without AsyncCommit.
func (l *Layer) DrainCommits() error {
	if l.committer == nil {
		return nil
	}
	if err := l.committer.drain(); err != nil {
		return l.fatal(err)
	}
	return nil
}

// AbortCommits models this rank's fail-stop failure for the async
// pipeline: outstanding (not yet durable) lines are discarded, and the
// call returns only once the committer has stopped touching the store, so
// the runtime can wipe node-local storage without a racing write
// resurrecting lost data.
func (l *Layer) AbortCommits() {
	if l.committer != nil {
		l.committer.abort()
	}
}

// Close tears the layer's background resources down at the end of an
// attempt. When abort is set the pipeline is discarded (fail-stop);
// otherwise it is drained so final checkpoints reach the store.
func (l *Layer) Close(abort bool) error {
	if l.committer == nil {
		return nil
	}
	var err error
	if abort {
		l.committer.abort()
	} else {
		err = l.committer.drain()
	}
	l.committer.close()
	if err != nil {
		return l.fatal(err)
	}
	return nil
}

// RequestCheckpoint asks the layer to take a checkpoint at the next pragma
// the application reaches, regardless of policy. Safe to call from any
// goroutine (the ops control plane's POST /checkpoint); the request is
// consumed by the first pragma that honors it. Only this rank needs to be
// asked — the protocol's join-if-others-started rule pulls every other
// rank into the same recovery line.
func (l *Layer) RequestCheckpoint() {
	l.extCheckpoint.Store(true)
}

// State returns the application state registry.
func (l *Layer) State() *statesave.Registry { return l.state }

// Heap returns the checkpointable heap (may be nil).
func (l *Layer) Heap() *statesave.Heap { return l.heap }

// inPeriod reports whether a checkpoint is in progress locally (the
// "checkpointing period" between StartCheckpoint and CommitCheckpoint).
func (l *Layer) inPeriod() bool {
	return l.mode == ModeNonDetLog || l.mode == ModeRecvOnlyLog
}

func (l *Layer) fatal(err error) error {
	if l.err == nil && err != nil {
		l.err = err
	}
	return err
}

// --- Control message handling ---

// checkControl drains pending control messages and applies any mode
// transitions they enable. It corresponds to the "Check for control
// messages" steps in the paper's Figure 4 pseudo-code, and additionally
// collects Recovered notices.
func (l *Layer) checkControl() error {
	if l.err != nil {
		return l.err
	}
	if l.committer != nil {
		// Advance the virtual commit pipeline (no-op for the real one).
		if err := l.committer.pump(); err != nil {
			return l.fatal(err)
		}
	}
	for {
		st, found, err := l.ctrl.Iprobe(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return err
		}
		if !found {
			break
		}
		buf := make([]byte, st.Bytes)
		st, err = l.ctrl.RecvBytes(buf, st.Source, st.Tag)
		if err != nil {
			return err
		}
		switch st.Tag {
		case ctrlTagInitiated:
			m, err := decodeCtrlInitiated(buf[:st.Bytes])
			if err != nil {
				return l.fatal(err)
			}
			l.noteInitiated(st.Source, m)
		default:
			return l.fatal(fmt.Errorf("ckpt: unexpected control message tag %d from %d", st.Tag, st.Source))
		}
	}
	return l.applyTransitions()
}

func (l *Layer) noteInitiated(src int, m ctrlInitiated) {
	l.stats.ControlMessages++
	switch {
	case l.inPeriod() && m.Line == l.epoch:
		if !l.started[src] {
			l.started[src] = true
			l.startedCount++
		}
		l.expectedLate[src] = int64(m.SentToYou)
	case m.Line == l.epoch+1:
		// The sender is one line ahead of us; remember its start for when
		// our own pragma fires. This is the "some other process has
		// initiated a global checkpoint" condition.
		if !l.nextStarted[src] {
			l.nextStarted[src] = true
			l.nextStartedCount++
		}
		l.nextExpected[src] = int64(m.SentToYou)
	default:
		l.fatal(fmt.Errorf("ckpt: rank %d: control message for line %d in epoch %d (mode %v)",
			l.rank, m.Line, l.epoch, l.mode))
	}
}

// applyTransitions fires the state-machine edges whose conditions now hold
// (Figure 3): NonDet-Log -> RecvOnly-Log when all nodes have started the
// checkpoint, and RecvOnly-Log -> Run (commit) when all late messages have
// been received.
func (l *Layer) applyTransitions() error {
	if l.mode == ModeNonDetLog && l.startedCount == l.n {
		l.enterRecvOnlyLog()
	}
	if l.mode == ModeRecvOnlyLog && l.lateComplete() {
		return l.commitCheckpoint()
	}
	return nil
}

// enterRecvOnlyLog stops non-deterministic-event logging. Everyone has
// started the checkpoint (directly observed, or inferred from a message
// whose sender had itself stopped logging), so sends from here on cannot be
// early.
func (l *Layer) enterRecvOnlyLog() {
	if l.mode != ModeNonDetLog {
		return
	}
	l.mode = ModeRecvOnlyLog
	// Everyone started line L, so everyone committed line L-1; recovery can
	// never need anything older — garbage-collect it. With incremental
	// checkpointing the floor is the full-snapshot anchor of line L-1, so
	// the delta chain stays reachable.
	if l.epoch >= 2 {
		floor := l.epoch - 1
		if l.committer != nil {
			// With the async pipeline, "everyone started line L" no longer
			// implies everyone durably committed L-1: a peer can have up to
			// two protocol-committed lines still in flight (one at the
			// store, one double-buffered), and a fail-stop failure discards
			// both — its durable watermark can trail its epoch by three
			// lines. Keep two extra lines so the global recovery line is
			// never garbage-collected out from under a failed peer.
			if floor <= asyncPipelineDepth {
				return
			}
			floor -= asyncPipelineDepth
		}
		if k := uint64(l.cfg.FullCheckpointEvery); k > 1 {
			floor = floor - (floor-1)%k
		}
		if l.committer != nil {
			// Defer the (possibly disk-touching) garbage collection to the
			// background committer; it runs after this line commits.
			l.pendingRetire = int(floor)
		} else {
			// Best-effort GC: stale versions are harmless; the commit stands.
			_ = l.store.Retire(l.rank, int(floor)) //c3lint:allow commiterr best-effort GC; commit already durable
		}
	}
}

// lateComplete reports whether every expected late message has arrived:
// for each process Q, Q's Checkpoint-Initiated message told us how many
// messages it sent us in the previous epoch, and our Late-Received counter
// must reach that number.
func (l *Layer) lateComplete() bool {
	if l.startedCount != l.n {
		return false
	}
	for q := 0; q < l.n; q++ {
		if l.expectedLate[q] < 0 || l.lateRecvd[q] != uint64(l.expectedLate[q]) {
			return false
		}
	}
	return true
}

// --- Send and receive cores ---

func (l *Layer) encodeHeader(dst []byte) []byte {
	h := Header{
		Color:          EpochColor(l.epoch),
		StoppedLogging: l.mode != ModeNonDetLog,
		Epoch:          l.epoch,
		HasEpoch:       true,
	}
	return l.codec.Encode(dst, h)
}

func (l *Layer) noteSent(c *mpi.Comm, destComm int) {
	if wr, err := c.WorldRank(destComm); err == nil {
		l.sent[wr]++
	}
	l.stats.Sends++
}

// planeCtx returns the context id the protocol uses in signatures: the
// point-to-point plane for application messages, the collective plane for
// the layer's own collective streams (so they can never cross-match an
// application wildcard receive).
func planeCtx(c *mpi.Comm, coll bool) uint32 {
	if coll {
		return c.CollCtx()
	}
	return c.Ctx()
}

// sendUser transmits a packed user payload with the protocol applied: check
// control messages, suppress Was-Early re-sends during recovery, piggyback
// the header, and count the send (paper Figure 4, chkpt_MPI_Send).
func (l *Layer) sendUser(c *mpi.Comm, payload []byte, destComm, tag int, coll bool) error {
	if l.err != nil {
		return l.err
	}
	if err := l.checkControl(); err != nil {
		return err
	}
	if l.mode == ModeRestore && l.wasEarly.Match(planeCtx(c, coll), tag, destComm) {
		// The receiver's checkpoint already includes this message; suppress
		// the re-send. The send still counts toward Sent-Count so the next
		// line's late-message accounting balances with the receiver's
		// restored Received counter.
		l.noteSent(c, destComm)
		l.stats.SuppressedSends++
		l.maybeFinishRestore()
		return nil
	}
	w := l.codec.Width()
	buf := make([]byte, 0, w+len(payload))
	buf = l.encodeHeader(buf)
	buf = append(buf, payload...)
	var err error
	if coll {
		err = c.SendPackedColl(buf, destComm, tag)
	} else {
		err = c.SendPacked(buf, destComm, tag)
	}
	if err != nil {
		return err
	}
	l.noteSent(c, destComm)
	l.stats.PiggybackBytes += uint64(w)
	return nil
}

// recvResult describes a protocol-level receive completion.
type recvResult struct {
	status        mpi.Status // user view: Bytes excludes the header
	payload       []byte     // packed user payload
	class         Class
	lateSeq       uint64 // valid when class == ClassLate
	replay        bool   // satisfied from the Late-Message-Registry
	senderStopped bool   // sender's stopped-logging piggyback bit
}

// recvUser receives one message with the protocol applied: replay from the
// Late-Message-Registry during recovery, pin wildcards from logged
// signatures, classify real arrivals and update registries and counters
// (paper Figure 4, chkpt_MPI_Recv).
func (l *Layer) recvUser(c *mpi.Comm, capBytes, src, tag int, coll bool) (recvResult, error) {
	if l.err != nil {
		return recvResult{}, l.err
	}
	if err := l.checkControl(); err != nil {
		return recvResult{}, err
	}
	wildcard := src == mpi.AnySource || tag == mpi.AnyTag
	if l.mode == ModeRestore {
		if e := l.lateReg.TakeMatch(planeCtx(c, coll), src, tag); e != nil {
			if e.Kind == LateData {
				l.stats.ReplayedLate++
				res := recvResult{
					status:  mpi.Status{Source: int(e.Sig.Src), Tag: int(e.Sig.Tag), Bytes: len(e.Data)},
					payload: e.Data,
					class:   ClassLate,
					lateSeq: e.Seq,
					replay:  true,
				}
				if len(e.Data) > capBytes {
					return res, fmt.Errorf("%w: replayed %d bytes into %d-byte buffer", mpi.ErrTruncate, len(e.Data), capBytes)
				}
				l.maybeFinishRestore()
				return res, nil
			}
			// IntraSig: restrict the wildcard to the original match and
			// perform a real receive — the re-executing sender re-sends it.
			src, tag = int(e.Sig.Src), int(e.Sig.Tag)
			l.stats.PinnedWildcards++
			l.maybeFinishRestore()
		}
	}
	w := l.codec.Width()
	staging := make([]byte, w+capBytes)
	var st mpi.Status
	var err error
	if coll {
		st, err = c.RecvPackedColl(staging, src, tag)
	} else {
		st, err = c.RecvPacked(staging, src, tag)
	}
	if err != nil {
		return recvResult{}, err
	}
	res, err := l.finishRecv(c, st, staging, wildcard, coll)
	if err != nil {
		return res, err
	}
	// Blocking receives have no request-table entry to record; the
	// transition (possibly a commit) can run immediately.
	return res, l.applyTransitions()
}

// finishRecv strips the header from a raw arrival and performs the
// classification bookkeeping. It is shared by blocking receives and
// non-blocking completions.
func (l *Layer) finishRecv(c *mpi.Comm, st mpi.Status, staging []byte, wildcard, coll bool) (recvResult, error) {
	w := l.codec.Width()
	if st.Bytes < w {
		return recvResult{}, l.fatal(fmt.Errorf("ckpt: message without piggyback header (%d bytes)", st.Bytes))
	}
	hdr, err := l.codec.Decode(staging[:st.Bytes])
	if err != nil {
		return recvResult{}, l.fatal(err)
	}
	payload := staging[w:st.Bytes]
	ust := mpi.Status{Source: st.Source, Tag: st.Tag, Bytes: st.Bytes - w}
	cls, seq, err := l.accountRecv(c, ust, hdr, payload, wildcard, coll)
	if err != nil {
		return recvResult{}, err
	}
	l.stats.Recvs++
	return recvResult{status: ust, payload: payload, class: cls, lateSeq: seq, senderStopped: hdr.StoppedLogging}, nil
}

// accountRecv classifies a received message and updates counters and
// registries.
func (l *Layer) accountRecv(c *mpi.Comm, st mpi.Status, hdr Header, payload []byte, wildcard, coll bool) (Class, uint64, error) {
	cls := ClassifyColors(hdr.Color, EpochColor(l.epoch))
	if hdr.HasEpoch {
		// Wide codec: validate the color arithmetic against exact epochs.
		exact, err := ClassifyEpochs(hdr.Epoch, l.epoch)
		if err != nil {
			return 0, 0, l.fatal(err)
		}
		if exact != cls {
			return 0, 0, l.fatal(fmt.Errorf("ckpt: color classification %v disagrees with epochs (%d vs %d)", cls, hdr.Epoch, l.epoch))
		}
	}
	srcWorld, err := c.WorldRank(st.Source)
	if err != nil {
		return 0, 0, l.fatal(err)
	}
	sig := Signature{Ctx: planeCtx(c, coll), Tag: int32(st.Tag), Src: int32(st.Source)}
	var seq uint64
	switch cls {
	case ClassIntra:
		l.received[srcWorld]++
		if l.mode == ModeNonDetLog {
			if hdr.StoppedLogging {
				// A process that stopped logging knows every process has
				// started the checkpoint; we must stop logging too, or the
				// saved state could depend on an unlogged event (Section 3.1).
				l.enterRecvOnlyLog()
			} else if wildcard || l.cfg.LogAllIntraSignatures {
				seq = l.lateReg.AddSig(sig)
				l.stats.SigLogged++
			}
		}
	case ClassEarly:
		l.earlyRecvd[srcWorld]++
		l.earlyReg.Add(sig, srcWorld, c.Rank(), len(payload))
		l.stats.EarlyRecorded++
		if l.mode == ModeNonDetLog && hdr.StoppedLogging {
			l.enterRecvOnlyLog()
		}
	case ClassLate:
		if !l.inPeriod() {
			return 0, 0, l.fatal(fmt.Errorf("ckpt: rank %d received late message %v outside a checkpoint period (mode %v)", l.rank, sig, l.mode))
		}
		l.lateRecvd[srcWorld]++
		if exp := l.expectedLate[srcWorld]; exp >= 0 && l.lateRecvd[srcWorld] > uint64(exp) {
			return 0, 0, l.fatal(fmt.Errorf("ckpt: rank %d received %d late messages from %d, expected %d", l.rank, l.lateRecvd[srcWorld], srcWorld, exp))
		}
		seq = l.lateReg.AddData(sig, payload)
		l.stats.LateLogged++
		l.stats.LateLoggedBytes += uint64(len(payload))
	}
	// NOTE: deliberately no applyTransitions here. If this late message is
	// the last one expected, the transition commits the checkpoint — and
	// the request table is serialized at commit. A non-blocking completion
	// must first record how its request completed (completeRecvEntry), or
	// the table would save the request as still pending and recovery would
	// re-post a real receive instead of replaying the logged payload,
	// shifting the whole stream by one message. Callers run the transition
	// once the completion is fully recorded.
	return cls, seq, nil
}

// maybeFinishRestore completes recovery when both registries (and the
// collective result log) have drained: "When the Was-Early-Registry and the
// Late-Message-Registry are empty, recovery is complete, and the process
// transitions to the Run state."
func (l *Layer) maybeFinishRestore() {
	if l.mode != ModeRestore {
		return
	}
	if !l.lateReg.Empty() || !l.wasEarly.Empty() || !l.results.Empty() || l.reqs.AnyReplayPending() {
		return
	}
	l.finishRestore()
}

func (l *Layer) finishRestore() {
	l.mode = ModeRun
}

// SyncTag is the user tag Sync exchanges its tokens on. It is the largest
// user tag; applications that use Sync should avoid it.
const SyncTag = mpi.MaxUserTag

// Sync is a global commit fence: two rounds of full pairwise token
// exchange on the world communicator. Because the transport is FIFO per
// sender/receiver pair, finishing round one guarantees a process has
// received (and, at its next protocol action, processed) every control
// message its peers sent before entering Sync; round-two tokens are only
// sent after round one completes, so when Sync returns, every peer has all
// the information its pending checkpoint commit needs — if all processes
// have started a checkpoint and the application has drained its late
// messages, the line is committed on every rank. Checkpoint commit never
// requires this (the protocol is non-blocking); Sync exists for tests and
// experiments that need a deterministic "line is committed everywhere"
// point.
func (l *Layer) Sync() error {
	wc := l.world
	n, r := l.n, l.rank
	var buf [0]byte
	for round := 0; round < 2; round++ {
		for q := 0; q < n; q++ {
			if q == r {
				continue
			}
			if err := wc.SendBytes(nil, q, SyncTag); err != nil {
				return err
			}
		}
		for q := 0; q < n; q++ {
			if q == r {
				continue
			}
			if _, err := wc.RecvBytes(buf[:], q, SyncTag); err != nil {
				return err
			}
		}
		if err := l.checkControl(); err != nil {
			return err
		}
		// With the async pipeline, "committed" additionally means durable at
		// the store. Fencing before the round-two tokens go out makes those
		// tokens certify durability: a process that has collected every
		// round-two token knows all its peers' pending lines are on stable
		// storage.
		if err := l.DrainCommits(); err != nil {
			return err
		}
	}
	return nil
}
