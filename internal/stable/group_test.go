package stable

import (
	"bytes"
	"testing"
	"time"

	"c3/internal/member"
)

// TestCommitPlanGrouped: under a grouped topology every codec shard stays
// on a group-local successor and exactly one parity shard (index k+m)
// lands in the next group.
func TestCommitPlanGrouped(t *testing.T) {
	rs, err := NewCodec("rs", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo := member.NewTopology(member.Launch(12), 6)
	for owner := 0; owner < 12; owner++ {
		sendPlan, holders, keepLocal, parity := commitPlan(rs, owner, 4, topo)
		if keepLocal {
			t.Fatalf("owner %d: erasure plan kept a local copy", owner)
		}
		if parity < 0 {
			t.Fatalf("owner %d: no parity holder", owner)
		}
		if topo.GroupOf(parity) == topo.GroupOf(owner) {
			t.Fatalf("owner %d: parity holder %d in own group", owner, parity)
		}
		seen := make(map[int]bool)
		for _, h := range holders {
			if seen[h] {
				t.Fatalf("owner %d: duplicate holder %d", owner, h)
			}
			seen[h] = true
			for _, idx := range sendPlan[h] {
				if idx == 4 {
					if h != parity {
						t.Fatalf("owner %d: parity shard on %d, parity holder %d", owner, h, parity)
					}
					continue
				}
				if topo.GroupOf(h) != topo.GroupOf(owner) {
					t.Fatalf("owner %d: codec shard %d left the group (holder %d)", owner, idx, h)
				}
				if h == owner {
					t.Fatalf("owner %d holds its own shard %d", owner, idx)
				}
			}
		}
	}
}

// TestReplicatedGroupLossRecoveredViaParity: rs k=3,m=1 plus one
// cross-group parity shard; all g ranks of one group fail at once (every
// group-local shard of their lines is gone) and each wiped rank's line
// must still reassemble — from the parity shard one group over.
func TestReplicatedGroupLossRecoveredViaParity(t *testing.T) {
	rs, err := NewCodec("rs", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n, g = 12, 6
	s := NewReplicatedStore(n, WithCodec(rs), WithGroupSize(g))
	defer s.Close()

	payloads := make(map[int][]byte)
	for r := 0; r < n; r++ {
		payload := make([]byte, 4_000+r)
		for i := range payload {
			payload[i] = byte(i*13 + r)
		}
		payloads[r] = payload
		writeCommitted(t, s, r, 1, map[string][]byte{"app": payload})
	}

	// Kill group 0 whole: ranks 0..5 lose everything at once.
	for r := 0; r < g; r++ {
		s.FailNode(r)
	}

	for r := 0; r < g; r++ {
		v, ok, err := s.LastCommitted(r)
		if err != nil || !ok || v != 1 {
			t.Fatalf("rank %d LastCommitted after group loss = %d,%v,%v; want 1,true,nil", r, v, ok, err)
		}
		snap, err := s.Open(r, 1)
		if err != nil {
			t.Fatalf("rank %d Open after group loss: %v", r, err)
		}
		got, err := snap.ReadSection("app")
		snap.Close()
		if err != nil || !bytes.Equal(got, payloads[r]) {
			t.Fatalf("rank %d reassembled %d bytes, err %v", r, len(got), err)
		}
	}
	// The survivors' group (group 1) lost only its parity shards; its own
	// lines still decode from group-local shards.
	for r := g; r < n; r++ {
		if v, ok, err := s.LastCommitted(r); err != nil || !ok || v != 1 {
			t.Fatalf("survivor %d LastCommitted = %d,%v,%v", r, v, ok, err)
		}
	}
}

// TestReplicatedGroupedRepartition: a membership change under a grouped
// topology re-places lines onto the new group assignment, including a
// fresh cross-group parity shard on the new next-group holder.
func TestReplicatedGroupedRepartition(t *testing.T) {
	rs, err := NewCodec("rs", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n, g = 12, 4
	s := NewReplicatedStore(n, WithCodec(rs), WithGroupSize(g))
	defer s.Close()
	payload := make([]byte, 5_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	writeCommitted(t, s, 5, 1, map[string][]byte{"app": payload})

	// Shrink across a group boundary: removing rank 2 re-partitions every
	// downstream group.
	m := s.Members().WithRemoved(2, 2)
	s.SetMembership(m)
	topo := member.NewTopology(m, g)

	s.mu.Lock()
	rec, ok := s.nodes[topo.ParityHolder(5)].commits[replCommitKey{owner: 5, version: 1}]
	s.mu.Unlock()
	if !ok {
		t.Fatalf("new parity holder %d has no marker after re-partition", topo.ParityHolder(5))
	}
	if h, hasCross := rec.crossHolder(); !hasCross || h != topo.ParityHolder(5) {
		t.Fatalf("marker cross holder = %d,%v; want %d,true", h, hasCross, topo.ParityHolder(5))
	}
	// The re-placed line survives losing the owner's whole new group.
	for _, r := range topo.GroupMembers(topo.GroupOf(5)) {
		s.FailNode(r)
	}
	snap, err := s.Open(5, 1)
	if err != nil {
		t.Fatalf("Open after post-repartition group loss: %v", err)
	}
	defer snap.Close()
	if got, err := snap.ReadSection("app"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %d bytes, err %v", len(got), err)
	}
}

// TestDistStoreGroupLossRecoveredViaParity is the multi-process form: all
// g stores of one group are wiped (their processes died together) and the
// restarted owner reassembles its line over the wire from the parity
// shard held one group over.
func TestDistStoreGroupLossRecoveredViaParity(t *testing.T) {
	rs, err := NewCodec("rs", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n, g = 10, 5
	stores := distWorld(t, n, WithDistCodec(rs), WithDistGroupSize(g))
	payload := make([]byte, 8_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	writeDistCommitted(t, stores[1], 1, 1, map[string][]byte{"app": payload})

	// Group 0 dies whole: owner and every group-local shard holder.
	for r := 0; r < g; r++ {
		stores[r].mu.Lock()
		stores[r].node = newReplNode()
		stores[r].mu.Unlock()
	}

	v, ok, err := stores[1].LastCommitted(1)
	if err != nil || !ok || v != 1 {
		t.Fatalf("LastCommitted after group wipe = %d,%v,%v; want 1,true,nil", v, ok, err)
	}
	snap, err := stores[1].Open(1, 1)
	if err != nil {
		t.Fatalf("Open after group wipe: %v", err)
	}
	defer snap.Close()
	if got, err := snap.ReadSection("app"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %d bytes, err %v", len(got), err)
	}
	if stores[1].Reassemblies() != 1 {
		t.Fatalf("Reassemblies = %d", stores[1].Reassemblies())
	}
}

// TestDistStoreCommitExcusesGroupDeadNeighbors: the satellite fix. With a
// whole neighbor group silent (a correlated loss far beyond the ≤m
// individual deaths the ring excusal assumed), a commit whose cross-group
// parity shard IS acknowledged must succeed after the ack timeout instead
// of failing the shard floor.
func TestDistStoreCommitExcusesGroupDeadNeighbors(t *testing.T) {
	rs, err := NewCodec("rs", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n, g = 10, 5
	stores := distWorld(t, n, WithDistCodec(rs), WithDistGroupSize(g),
		WithAckTimeout(200*time.Millisecond), WithQueryTimeout(200*time.Millisecond))

	// Rank 0's group-local holders are ranks 1..4; silence them all before
	// the commit so none of the k+m=4 codec shards is ever acknowledged.
	// The parity holder (group 1) stays alive.
	for r := 1; r < g; r++ {
		stores[r].net.Kill(r)
	}
	writeDistCommitted(t, stores[0], 0, 1, map[string][]byte{"app": []byte("group-dead-excusal")})

	// The line is recoverable — through the parity shard alone.
	snap, err := stores[0].Open(0, 1)
	if err != nil {
		t.Fatalf("Open after group-dead commit: %v", err)
	}
	defer snap.Close()
	if got, err := snap.ReadSection("app"); err != nil || string(got) != "group-dead-excusal" {
		t.Fatalf("ReadSection = %q, %v", got, err)
	}
}
