package apps

import (
	"math"

	"c3/internal/cluster"
	"c3/internal/mpi"
)

// HPL mirrors the High-Performance Linpack benchmark: a right-looking LU
// factorization with columns distributed block-cyclically; at each step the
// panel owner factors its column block and broadcasts it, and every rank
// updates its trailing columns. The paper places the checkpoint location
// "at the top of the innermost driver loop in main". HPL has no global
// barriers in its factorization loop, which is exactly why the paper calls
// out barrier-free codes as the motivation for non-blocking coordination.
func init() {
	Register(&Kernel{
		Name:        "HPL",
		Description: "right-looking LU: panel factorization + broadcast + trailing update",
		Defaults: func(c Class) Params {
			n, _ := sized(Params{Class: c}, map[Class]int{ClassS: 48, ClassW: 256, ClassA: 512}, nil)
			return Params{Class: c, N: n, Iters: 1}
		},
		App: hplApp,
	})
}

func hplApp(p Params, out *Output) func(cluster.Env) error {
	return func(env cluster.Env) error {
		n, _ := sized(p, map[Class]int{ClassS: 48, ClassW: 256, ClassA: 512},
			map[Class]int{ClassS: 1})
		st := env.State()
		r, size := env.Rank(), env.Size()
		for n%size != 0 {
			n++
		}
		localCols := n / size
		// Column j lives on rank j%size at local index j/size (block size 1
		// cyclic distribution, the paper's nb generalizes this).

		k := st.Int("k")
		a := st.Float64s("a", n*localCols).Data() // column-major local panel

		restored, err := env.Restore()
		if err != nil {
			return err
		}
		w := env.World()

		if !restored && k.Get() == 0 {
			for lc := 0; lc < localCols; lc++ {
				j := lc*size + r
				for i := 0; i < n; i++ {
					v := 1.0 / (1.0 + float64(i+j))
					if i == j {
						v += float64(n)
					}
					a[lc*n+i] = v
				}
			}
		}

		panel := make([]byte, 8*n)
		col := make([]float64, n)

		for k.Get() < n {
			kk := k.Get()
			owner := kk % size
			if r == owner {
				lc := kk / size
				// Factor the panel column: scale below the diagonal.
				piv := a[lc*n+kk]
				if piv == 0 {
					piv = 1e-12
				}
				for i := kk + 1; i < n; i++ {
					a[lc*n+i] /= piv
				}
				copy(col, a[lc*n:(lc+1)*n])
				mpi.PutFloat64s(panel, col)
			}
			if err := w.Bcast(panel, n, mpi.TypeFloat64, owner); err != nil {
				return err
			}
			if r != owner {
				mpi.GetFloat64s(col, panel)
			}
			// Trailing update on our columns right of k.
			for lc := 0; lc < localCols; lc++ {
				j := lc*size + r
				if j <= kk {
					continue
				}
				ajk := a[lc*n+kk]
				for i := kk + 1; i < n; i++ {
					a[lc*n+i] -= col[i] * ajk
				}
			}
			k.Add(1)
			if err := env.Checkpoint(); err != nil { // top of the driver loop
				return err
			}
		}
		sum := 0.0
		for lc := 0; lc < localCols; lc++ {
			for i := 0; i < n; i++ {
				v := a[lc*n+i]
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					sum += v * 1e-3
				}
			}
		}
		out.Report(r, sum)
		return nil
	}
}
