package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

type testPayload struct {
	seq  int
	size int
}

func (p testPayload) TransportSize() int { return p.size }

func TestFIFOPerPair(t *testing.T) {
	nw := NewNetwork(2)
	const k = 500
	for i := 0; i < k; i++ {
		if err := nw.Send(Message{From: 0, To: 1, Payload: testPayload{seq: i}}); err != nil {
			t.Fatal(err)
		}
	}
	ep := nw.Endpoint(1)
	for i := 0; i < k; i++ {
		msg, err := ep.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got := msg.Payload.(testPayload).seq; got != i {
			t.Fatalf("message %d arrived as %d", i, got)
		}
	}
}

func TestFIFOPerPairConcurrentSenders(t *testing.T) {
	const senders = 4
	const k = 200
	nw := NewNetwork(senders + 1)
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < k; i++ {
				_ = nw.Send(Message{From: s, To: senders, Payload: testPayload{seq: s*10000 + i}})
			}
		}(s)
	}
	ep := nw.Endpoint(senders)
	next := make([]int, senders)
	for n := 0; n < senders*k; n++ {
		msg, err := ep.Recv()
		if err != nil {
			t.Fatal(err)
		}
		seq := msg.Payload.(testPayload).seq
		s, i := seq/10000, seq%10000
		if i != next[s] {
			t.Fatalf("sender %d: got %d want %d", s, i, next[s])
		}
		next[s]++
	}
	wg.Wait()
}

func TestTryRecvAndPending(t *testing.T) {
	nw := NewNetwork(2)
	ep := nw.Endpoint(1)
	if _, ok, err := ep.TryRecv(); ok || err != nil {
		t.Fatalf("empty tryrecv: ok=%v err=%v", ok, err)
	}
	_ = nw.Send(Message{From: 0, To: 1, Payload: testPayload{}})
	if ep.Pending() != 1 {
		t.Fatalf("pending %d", ep.Pending())
	}
	if _, ok, err := ep.TryRecv(); !ok || err != nil {
		t.Fatalf("tryrecv: ok=%v err=%v", ok, err)
	}
}

func TestKillUnblocksAndDrops(t *testing.T) {
	nw := NewNetwork(2)
	done := make(chan error, 1)
	go func() {
		_, err := nw.Endpoint(1).Recv()
		done <- err
	}()
	nw.Kill(1)
	if err := <-done; err == nil {
		t.Fatal("recv on killed endpoint returned nil")
	}
	// Sends to the dead endpoint are dropped, not errors (fail-stop).
	if err := nw.Send(Message{From: 0, To: 1, Payload: testPayload{}}); err != nil {
		t.Fatal(err)
	}
	if nw.Stats().MessagesDropped != 1 {
		t.Fatalf("drops %d", nw.Stats().MessagesDropped)
	}
}

func TestShutdownStopsSends(t *testing.T) {
	nw := NewNetwork(2)
	nw.Shutdown()
	if err := nw.Send(Message{From: 0, To: 1}); err == nil {
		t.Fatal("send after shutdown succeeded")
	}
}

func TestLatencyPreservesOrderAndDelays(t *testing.T) {
	nw := NewNetwork(2, WithLatency(ConstantLatency(2*time.Millisecond, 0)))
	start := time.Now()
	const k = 5
	for i := 0; i < k; i++ {
		_ = nw.Send(Message{From: 0, To: 1, Payload: testPayload{seq: i}})
	}
	ep := nw.Endpoint(1)
	for i := 0; i < k; i++ {
		msg, err := ep.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got := msg.Payload.(testPayload).seq; got != i {
			t.Fatalf("order violated with latency: %d vs %d", got, i)
		}
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("no latency applied: %v", elapsed)
	}
}

func TestStatsCounters(t *testing.T) {
	nw := NewNetwork(3)
	_ = nw.Send(Message{From: 0, To: 1, Class: Data, Payload: testPayload{size: 100}})
	_ = nw.Send(Message{From: 0, To: 2, Class: Control, Payload: testPayload{size: 10}})
	st := nw.Stats()
	if st.MessagesSent != 2 || st.DataMessages != 1 || st.ControlMessages != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.DeliveredPayload != 110 {
		t.Fatalf("payload bytes %d", st.DeliveredPayload)
	}
}

func TestBandwidthTerm(t *testing.T) {
	m := ConstantLatency(time.Millisecond, 1e6) // 1 MB/s
	d := m(0, 1, 1000)
	if d < time.Millisecond+900*time.Microsecond {
		t.Fatalf("bandwidth term missing: %v", d)
	}
}

func TestClassString(t *testing.T) {
	if Data.String() != "data" || Control.String() != "control" {
		t.Fatal("class strings")
	}
	if s := Class(9).String(); s == "" {
		t.Fatal("unknown class string empty")
	}
	_ = fmt.Sprintf("%v %v", Data, Control)
}
