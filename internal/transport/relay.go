package transport

// Inter-group relay plane. In a two-level topology (member.Topology) only
// a group's delegate keeps cross-group connections warm; every other rank
// reaches a rank outside its group in two hops — through a delegate — so
// the per-rank connection graph stays O(g + world/g) instead of O(world).
// The relay is a thin router over a demux plane: a RelayPayload wraps
// another wire kind's payload with its original sender and final
// destination, the intermediate's router forwards it, and the destination's
// router unwraps it and injects it into the inner kind's plane as if it had
// arrived directly (the original sender stays the liveness-credited peer).
//
// The relay is deliberately topology-blind: callers pick the intermediate
// hop (detect routes via the destination group's runtime delegate). A hop
// budget bounds misrouted frames instead of letting them orbit.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"c3/internal/wire"
)

// relayMaxHops bounds forwarding: source -> intermediate -> destination
// needs one forward; a few spare hops tolerate a re-route, anything past
// that is a routing loop and the frame is dropped.
const relayMaxHops = 3

// RelayPayload is a wrapped message in flight through an intermediate rank.
type RelayPayload struct {
	// Orig is the original sender; Dest the final destination.
	Orig, Dest int
	// Kind is the inner payload's wire kind; Data its wire encoding.
	Kind uint8
	Data []byte
	// Hops is the remaining forward budget.
	Hops uint8
}

// TransportSize implements Sizer (in-memory network accounting).
func (p *RelayPayload) TransportSize() int { return 20 + len(p.Data) }

// WireKind implements WirePayload.
func (p *RelayPayload) WireKind() uint8 { return WireKindRelay }

// MarshalWire implements WirePayload.
func (p *RelayPayload) MarshalWire() []byte {
	w := wire.NewWriter(26 + len(p.Data))
	w.Int(p.Orig)
	w.Int(p.Dest)
	w.U8(p.Kind)
	w.U8(p.Hops)
	w.Bytes32(p.Data)
	return w.Bytes()
}

func init() {
	RegisterWireDecoder(WireKindRelay, func(data []byte) (any, error) {
		r := wire.NewReader(data)
		p := &RelayPayload{Orig: r.Int(), Dest: r.Int(), Kind: r.U8(), Hops: r.U8()}
		p.Data = append([]byte(nil), r.Bytes32()...)
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("transport: relay payload: %w", err)
		}
		return p, nil
	})
}

// Relay is one rank's router on the relay plane of a Demux. Create it
// before Demux.Start (it claims the WireKindRelay plane), then Start it.
type Relay struct {
	demux *Demux
	self  int
	plane Interconnect

	forwarded atomic.Int64
	delivered atomic.Int64

	wg sync.WaitGroup
}

// NewRelay claims the demux's relay plane for rank d.self.
func NewRelay(d *Demux) *Relay {
	return &Relay{demux: d, self: d.self, plane: d.Plane(WireKindRelay)}
}

// Start launches the router goroutine.
func (r *Relay) Start() {
	r.wg.Add(1)
	go r.loop()
}

// Close stops the router. The demux (and its mesh) stays up.
func (r *Relay) Close() {
	r.plane.Kill(r.self)
	r.wg.Wait()
}

// Forwarded returns how many frames this rank relayed onward for others;
// Delivered how many arrived here and were injected into their inner plane.
func (r *Relay) Forwarded() int64 { return r.forwarded.Load() }
func (r *Relay) Delivered() int64 { return r.delivered.Load() }

// Send routes inner toward dest through the intermediate rank via. A send
// to self (or via self) short-circuits: the payload is injected locally or
// sent directly without touching the wire twice.
func (r *Relay) Send(via, dest int, inner WirePayload) error {
	p := &RelayPayload{Orig: r.self, Dest: dest, Kind: inner.WireKind(),
		Data: inner.MarshalWire(), Hops: relayMaxHops}
	if dest == r.self {
		r.deliver(p)
		return nil
	}
	if via == r.self || via == dest {
		return r.plane.Send(Message{From: r.self, To: dest, Class: Control, Payload: p})
	}
	return r.plane.Send(Message{From: r.self, To: via, Class: Control, Payload: p})
}

func (r *Relay) loop() {
	defer r.wg.Done()
	ep := r.plane.Endpoint(r.self)
	for {
		msg, err := ep.Recv()
		if err != nil {
			return
		}
		p, ok := msg.Payload.(*RelayPayload)
		if !ok {
			continue
		}
		if p.Dest == r.self {
			r.deliver(p)
			continue
		}
		if p.Hops == 0 {
			continue // routing loop: drop instead of orbiting
		}
		fwd := *p
		fwd.Hops--
		r.forwarded.Add(1)
		_ = r.plane.Send(Message{From: r.self, To: p.Dest, Class: Control, Payload: &fwd})
	}
}

// deliver unwraps a payload addressed to this rank and injects it into its
// inner kind's plane, attributed to the original sender.
func (r *Relay) deliver(p *RelayPayload) {
	inner, err := DecodeWirePayload(p.Kind, p.Data)
	if err != nil {
		return
	}
	r.delivered.Add(1)
	r.demux.Inject(p.Kind, Message{From: p.Orig, To: r.self, Class: Control, Payload: inner})
}
