package stable

import (
	"os"
	"path/filepath"
	"testing"
)

// TestDiskStoreTornCommit kills the commit at every stage boundary and
// asserts the store's core durability invariant: LastCommitted never names
// a version whose data could be partial. A version becomes visible only
// through the final COMMITTED rename, which happens after every section
// file and the directory itself are fsynced.
func TestDiskStoreTornCommit(t *testing.T) {
	for _, stage := range []string{"marker-write", "marker-rename", "dir-sync"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s, err := NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}

			// Version 1 commits cleanly: the recovery floor.
			ck, err := s.Begin(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := ck.WriteSection("app", []byte("line-1")); err != nil {
				t.Fatal(err)
			}
			if err := ck.Commit(); err != nil {
				t.Fatal(err)
			}

			// Version 2 dies mid-commit at the stage under test.
			ck2, err := s.Begin(0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := ck2.WriteSection("app", []byte("line-2")); err != nil {
				t.Fatal(err)
			}
			diskCrashpoint = func(st string) bool { return st == stage }
			defer func() { diskCrashpoint = nil }()
			err = ck2.Commit()

			// The "machine reboots": a fresh store over the same directory.
			s2, err2 := NewDiskStore(dir)
			if err2 != nil {
				t.Fatal(err2)
			}
			last, ok, err3 := s2.LastCommitted(0)
			if err3 != nil {
				t.Fatal(err3)
			}
			switch stage {
			case "marker-write", "marker-rename":
				// The crash hit before the marker rename: version 2 must be
				// invisible, version 1 still the recovery line.
				if err == nil {
					t.Fatalf("commit reported success despite dying at %s", stage)
				}
				if !ok || last != 1 {
					t.Fatalf("LastCommitted = %d,%v after torn commit; want 1,true", last, ok)
				}
				if _, err := s2.Open(0, 2); err == nil {
					t.Fatal("torn version 2 opened successfully")
				}
			case "dir-sync":
				// The rename happened; only its durability sync was cut
				// short. Whichever way the namespace landed, the visible
				// version must be completely written.
				if !ok {
					t.Fatal("no committed version after rename-stage crash")
				}
				snap, err := s2.Open(0, last)
				if err != nil {
					t.Fatalf("Open(%d): %v", last, err)
				}
				want := "line-1"
				if last == 2 {
					want = "line-2"
				}
				data, err := snap.ReadSection("app")
				if err != nil || string(data) != want {
					t.Fatalf("version %d content = %q, %v; want %q", last, data, err, want)
				}
				snap.Close()
			}
		})
	}
}

// TestDiskStoreStaleCommittingMarker models the exact on-disk state a
// crash between marker write and rename leaves behind (a ".committing"
// file): the version must stay invisible and a later Begin must be able to
// rewrite it.
func TestDiskStoreStaleCommittingMarker(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := s.Begin(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.WriteSection("app", []byte("partial")); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash artifact directly.
	vdir := filepath.Join(dir, "rank0003", "v00000007")
	if err := os.WriteFile(filepath.Join(vdir, ".committing"), []byte("ok\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok, _ := s.LastCommitted(3); ok {
		t.Fatal("stale .committing marker made the version visible")
	}
	if _, err := s.Open(3, 7); err == nil {
		t.Fatal("Open succeeded on an uncommitted version")
	}

	// The re-execution rewrites the same version from scratch and commits.
	ck2, err := s.Begin(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck2.WriteSection("app", []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := ck2.Commit(); err != nil {
		t.Fatal(err)
	}
	last, ok, err := s.LastCommitted(3)
	if err != nil || !ok || last != 7 {
		t.Fatalf("LastCommitted = %d,%v,%v; want 7,true,nil", last, ok, err)
	}
	snap, err := s.Open(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if data, _ := snap.ReadSection("app"); string(data) != "rewritten" {
		t.Fatalf("content = %q after rewrite", data)
	}
}
