package cluster_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/mpi"
	"c3/internal/stable"
)

// run executes a cluster configuration with a deadlock guard.
func run(t *testing.T, cfg cluster.Config) *cluster.Result {
	t.Helper()
	type out struct {
		res *cluster.Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		r, e := cluster.Run(cfg)
		ch <- out{r, e}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("run failed: %v", o.err)
		}
		return o.res
	case <-time.After(60 * time.Second):
		t.Fatal("run timed out (protocol deadlock?)")
		return nil
	}
}

// recorder collects per-rank values across attempts for assertions.
type recorder struct {
	mu   sync.Mutex
	vals map[string][]int64
}

func newRecorder() *recorder { return &recorder{vals: make(map[string][]int64)} }

func (r *recorder) add(key string, v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vals[key] = append(r.vals[key], v)
}

func (r *recorder) get(key string) []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int64(nil), r.vals[key]...)
}

func TestCheckpointCommitsWithoutTraffic(t *testing.T) {
	store := stable.NewMemStore()
	cfg := cluster.Config{
		Ranks: 4,
		Store: store,
		App: func(env cluster.Env) error {
			if _, err := env.Restore(); err != nil {
				return err
			}
			if err := env.CheckpointNow(); err != nil {
				return err
			}
			return cluster.LayerOf(env).Sync()
		},
	}
	res := run(t, cfg)
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for r := 0; r < 4; r++ {
		v, ok, err := store.LastCommitted(r)
		if err != nil || !ok || v != 1 {
			t.Fatalf("rank %d: committed=(%d,%v,%v)", r, v, ok, err)
		}
	}
	for _, rs := range res.Stats {
		if rs.Stats.CheckpointsTaken != 1 {
			t.Fatalf("rank %d took %d checkpoints", rs.Rank, rs.Stats.CheckpointsTaken)
		}
	}
}

// TestFigure2LateMessage reproduces the late message of the paper's
// Figure 2: sent before the sender's line, received after the receiver's
// line. It must be delivered normally AND logged, and the line must commit.
func TestFigure2LateMessage(t *testing.T) {
	store := stable.NewMemStore()
	rec := newRecorder()
	cfg := cluster.Config{
		Ranks: 2,
		Store: store,
		App: func(env cluster.Env) error {
			st := env.State()
			phase := st.Int("phase")
			got := st.Int("got")
			if _, err := env.Restore(); err != nil {
				return err
			}
			w := env.World()
			switch env.Rank() {
			case 0:
				if phase.Get() < 1 {
					if err := w.SendBytes([]byte{42}, 1, 7); err != nil {
						return err
					}
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil {
						return err
					}
				}
			case 1:
				if phase.Get() < 1 {
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil {
						return err
					}
				}
				if phase.Get() < 2 {
					var buf [1]byte
					if _, err := w.RecvBytes(buf[:], 0, 7); err != nil {
						return err
					}
					got.Set(int(buf[0]))
					phase.Set(2)
				}
				rec.add("got", int64(got.Get()))
			}
			return cluster.LayerOf(env).Sync()
		},
	}
	res := run(t, cfg)
	if got := rec.get("got"); len(got) != 1 || got[0] != 42 {
		t.Fatalf("receiver got %v", got)
	}
	if res.Stats[1].Stats.LateLogged != 1 {
		t.Fatalf("rank 1 logged %d late messages, want 1", res.Stats[1].Stats.LateLogged)
	}
	for r := 0; r < 2; r++ {
		if v, ok, _ := store.LastCommitted(r); !ok || v != 1 {
			t.Fatalf("rank %d: line not committed (v=%d ok=%v)", r, v, ok)
		}
	}
}

// TestFigure2EarlyMessage reproduces the early message: sent after the
// sender's line, received before the receiver's line. The receiver must
// record its signature in the Early-Message-Registry.
func TestFigure2EarlyMessage(t *testing.T) {
	rec := newRecorder()
	cfg := cluster.Config{
		Ranks: 2,
		App: func(env cluster.Env) error {
			st := env.State()
			phase := st.Int("phase")
			got := st.Int("got")
			if _, err := env.Restore(); err != nil {
				return err
			}
			w := env.World()
			switch env.Rank() {
			case 0:
				if phase.Get() < 1 {
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil {
						return err
					}
				}
				if phase.Get() < 2 {
					if err := w.SendBytes([]byte{43}, 1, 8); err != nil {
						return err
					}
					phase.Set(2)
				}
			case 1:
				if phase.Get() < 1 {
					var buf [1]byte
					if _, err := w.RecvBytes(buf[:], 0, 8); err != nil {
						return err
					}
					got.Set(int(buf[0]))
					rec.add("early", int64(cluster.LayerOf(env).Stats().EarlyRecorded))
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil {
						return err
					}
				}
				rec.add("got", int64(got.Get()))
			}
			return cluster.LayerOf(env).Sync()
		},
	}
	run(t, cfg)
	if got := rec.get("got"); len(got) != 1 || got[0] != 43 {
		t.Fatalf("receiver got %v", got)
	}
	if early := rec.get("early"); len(early) != 1 || early[0] != 1 {
		t.Fatalf("early recorded %v, want [1]", early)
	}
}

// TestLateReplayAfterFailure: the receiver's post-line receive must be
// replayed from the Late-Message-Registry after a failure, because the
// sender (whose send was pre-line) does not re-send it.
func TestLateReplayAfterFailure(t *testing.T) {
	rec := newRecorder()
	cfg := cluster.Config{
		Ranks:    2,
		Failures: []cluster.FailureSpec{{Rank: 0, AtPragma: 2}},
		App: func(env cluster.Env) error {
			st := env.State()
			phase := st.Int("phase")
			got := st.Int("got")
			if _, err := env.Restore(); err != nil {
				return err
			}
			w := env.World()
			switch env.Rank() {
			case 0:
				if phase.Get() < 1 {
					if err := w.SendBytes([]byte{42}, 1, 7); err != nil {
						return err
					}
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil { // pragma 1
						return err
					}
				}
			case 1:
				if phase.Get() < 1 {
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil {
						return err
					}
				}
				if phase.Get() < 2 {
					var buf [1]byte
					if _, err := w.RecvBytes(buf[:], 0, 7); err != nil {
						return err
					}
					got.Set(int(buf[0]))
					phase.Set(2)
					rec.add("got", int64(got.Get()))
				}
			}
			if err := cluster.LayerOf(env).Sync(); err != nil {
				return err
			}
			return env.Checkpoint() // pragma 2: rank 0 dies here on attempt 0
		},
	}
	res := run(t, cfg)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	// The receive ran twice: once for real (attempt 0, logged) and once
	// replayed from the log (attempt 1).
	if got := rec.get("got"); len(got) != 2 || got[0] != 42 || got[1] != 42 {
		t.Fatalf("got values %v", got)
	}
	if res.Stats[1].Stats.ReplayedLate != 1 {
		t.Fatalf("rank 1 replayed %d late messages, want 1", res.Stats[1].Stats.ReplayedLate)
	}
}

// TestEarlySuppressionAfterFailure: the receiver's checkpoint already
// contains the early message's effect, so the re-executing sender's re-send
// must be suppressed via the Was-Early-Registry.
func TestEarlySuppressionAfterFailure(t *testing.T) {
	rec := newRecorder()
	cfg := cluster.Config{
		Ranks:    2,
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 2}},
		App: func(env cluster.Env) error {
			st := env.State()
			phase := st.Int("phase")
			got := st.Int("got")
			if _, err := env.Restore(); err != nil {
				return err
			}
			w := env.World()
			switch env.Rank() {
			case 0:
				if phase.Get() < 1 {
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil { // pragma 1
						return err
					}
				}
				if phase.Get() < 2 {
					if err := w.SendBytes([]byte{43}, 1, 8); err != nil {
						return err
					}
					phase.Set(2)
				}
			case 1:
				if phase.Get() < 1 {
					var buf [1]byte
					if _, err := w.RecvBytes(buf[:], 0, 8); err != nil {
						return err
					}
					got.Set(int(buf[0]))
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil { // pragma 1
						return err
					}
				}
				rec.add("got", int64(got.Get()))
			}
			if err := cluster.LayerOf(env).Sync(); err != nil {
				return err
			}
			return env.Checkpoint() // pragma 2: rank 1 dies here on attempt 0
		},
	}
	res := run(t, cfg)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	// got is recorded once per attempt; both must see the value exactly once.
	if got := rec.get("got"); len(got) != 2 || got[0] != 43 || got[1] != 43 {
		t.Fatalf("got values %v", got)
	}
	if res.Stats[0].Stats.SuppressedSends != 1 {
		t.Fatalf("rank 0 suppressed %d sends, want 1", res.Stats[0].Stats.SuppressedSends)
	}
}

// TestWildcardPinning: wildcard receives of intra-epoch messages during
// non-deterministic logging must be pinned by the logged signatures so that
// recovery reproduces the original match order.
func TestWildcardPinning(t *testing.T) {
	rec := newRecorder()
	const msgsPerSender = 3
	cfg := cluster.Config{
		Ranks:    4,
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 2}},
		App: func(env cluster.Env) error {
			st := env.State()
			phase := st.Int("phase")
			if _, err := env.Restore(); err != nil {
				return err
			}
			w := env.World()
			layer := cluster.LayerOf(env)
			switch env.Rank() {
			case 0: // wildcard receiver
				if phase.Get() < 1 {
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil {
						return err
					}
				}
				if phase.Get() < 2 {
					hash := int64(17)
					for i := 0; i < 2*msgsPerSender; i++ {
						var buf [1]byte
						stt, err := w.RecvBytes(buf[:], mpi.AnySource, 5)
						if err != nil {
							return err
						}
						hash = hash*31 + int64(stt.Source)*100 + int64(buf[0])
					}
					rec.add("hash", hash)
					phase.Set(2)
				}
			case 1, 2: // senders: checkpoint first, then send intra-epoch
				if phase.Get() < 1 {
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil {
						return err
					}
				}
				if phase.Get() < 2 {
					for i := 0; i < msgsPerSender; i++ {
						if err := w.SendBytes([]byte{byte(10*env.Rank() + i)}, 0, 5); err != nil {
							return err
						}
					}
					phase.Set(2)
				}
			case 3: // laggard: keeps everyone in NonDet-Log during the sends
				if phase.Get() < 1 {
					// Wait for a token showing the receiver is done, then
					// join the checkpoint.
					var buf [1]byte
					if _, err := w.RecvBytes(buf[:], 0, 6); err != nil {
						return err
					}
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil {
						return err
					}
				}
			}
			if env.Rank() == 0 && phase.Get() == 2 {
				if err := w.SendBytes([]byte{1}, 3, 6); err != nil {
					return err
				}
				phase.Set(3)
			}
			if err := layer.Sync(); err != nil {
				return err
			}
			return env.Checkpoint() // pragma 2: rank 1 dies here on attempt 0
		},
	}
	res := run(t, cfg)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	hashes := rec.get("hash")
	if len(hashes) != 2 {
		t.Fatalf("hash recorded %d times, want 2 (one per attempt)", len(hashes))
	}
	if hashes[0] != hashes[1] {
		t.Fatalf("wildcard match order diverged across recovery: %d vs %d", hashes[0], hashes[1])
	}
	if res.Stats[0].Stats.PinnedWildcards == 0 {
		t.Fatal("no wildcard receives were pinned during recovery")
	}
}

// TestLateWildcardOrderPreserved: wildcard receives completed by LATE
// messages replay in original arrival order across signatures.
func TestLateWildcardOrderPreserved(t *testing.T) {
	rec := newRecorder()
	cfg := cluster.Config{
		Ranks:    3,
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 2}},
		App: func(env cluster.Env) error {
			st := env.State()
			phase := st.Int("phase")
			if _, err := env.Restore(); err != nil {
				return err
			}
			w := env.World()
			switch env.Rank() {
			case 0: // receiver: checkpoint, then wildcard-receive late msgs
				if phase.Get() < 1 {
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil {
						return err
					}
				}
				if phase.Get() < 2 {
					hash := int64(17)
					for i := 0; i < 4; i++ {
						var buf [1]byte
						stt, err := w.RecvBytes(buf[:], mpi.AnySource, 5)
						if err != nil {
							return err
						}
						hash = hash*31 + int64(stt.Source)*100 + int64(buf[0])
					}
					rec.add("hash", hash)
					phase.Set(2)
				}
			case 1, 2: // senders: send BEFORE checkpointing (late for rank 0)
				if phase.Get() < 1 {
					for i := 0; i < 2; i++ {
						if err := w.SendBytes([]byte{byte(10*env.Rank() + i)}, 0, 5); err != nil {
							return err
						}
					}
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil {
						return err
					}
				}
			}
			if err := cluster.LayerOf(env).Sync(); err != nil {
				return err
			}
			return env.Checkpoint()
		},
	}
	res := run(t, cfg)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	hashes := rec.get("hash")
	if len(hashes) != 2 || hashes[0] != hashes[1] {
		t.Fatalf("late replay order diverged: %v", hashes)
	}
	if res.Stats[0].Stats.ReplayedLate != 4 {
		t.Fatalf("rank 0 replayed %d, want 4", res.Stats[0].Stats.ReplayedLate)
	}
}

// TestFigure6NonBlockingAcrossLine: an Irecv posted before the line,
// completed by a late message after it, with failed Test calls recorded and
// replayed, the early token suppressed, and the buffer reattached on
// recovery (paper Sections 4.1 and 2.3 combined).
func TestFigure6NonBlockingAcrossLine(t *testing.T) {
	rec := newRecorder()
	cfg := cluster.Config{
		Ranks:    2,
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 2}},
		App: func(env cluster.Env) error {
			st := env.State()
			phase := st.Int("phase")
			rid := st.Int("rid")
			buf := st.Bytes("payload")
			restored, err := env.Restore()
			if err != nil {
				return err
			}
			w := env.World()
			layer := cluster.LayerOf(env)
			switch env.Rank() {
			case 0:
				if restored && phase.Get() >= 1 && phase.Get() < 2 {
					// The Irecv crossed the line; Go cannot preserve the
					// buffer pointer, so reattach it (C3 does this via its
					// address-preserving allocator).
					scratch := make([]byte, 8)
					if err := layer.ReattachRecvBuffer(rid.Get(), scratch, 8, mpi.TypeByte); err != nil {
						return err
					}
					buf.SetData(scratch)
				}
				if phase.Get() < 1 {
					buf.SetData(make([]byte, 8))
					id, err := w.Irecv(buf.Data(), 8, mpi.TypeByte, 1, 9)
					if err != nil {
						return err
					}
					rid.Set(id)
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil { // pragma 1
						return err
					}
				}
				if phase.Get() < 2 {
					// Exactly three Tests fail: rank 1 sends only after our
					// token, which we send after the Tests.
					fails := 0
					for i := 0; i < 3; i++ {
						if _, ok, err := w.Test(rid.Get()); err != nil {
							return err
						} else if !ok {
							fails++
						}
					}
					rec.add("fails", int64(fails))
					if err := w.SendBytes([]byte{1}, 1, 10); err != nil {
						return err
					}
					stt, err := w.Wait(rid.Get())
					if err != nil {
						return err
					}
					rec.add("bytes", int64(stt.Bytes))
					rec.add("first", int64(buf.Data()[0]))
					phase.Set(2)
				}
			case 1:
				if phase.Get() < 1 {
					var tok [1]byte
					if _, err := w.RecvBytes(tok[:], 0, 10); err != nil {
						return err
					}
					payload := []byte{9, 8, 7, 6, 5, 4, 3, 2}
					if err := w.SendBytes(payload, 0, 9); err != nil {
						return err
					}
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil { // pragma 1
						return err
					}
				}
			}
			if err := layer.Sync(); err != nil {
				return err
			}
			return env.Checkpoint() // pragma 2: rank 1 dies on attempt 0
		},
	}
	res := run(t, cfg)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	fails := rec.get("fails")
	if len(fails) != 2 || fails[0] != 3 || fails[1] != 3 {
		t.Fatalf("test-failure counts %v, want [3 3]", fails)
	}
	firsts := rec.get("first")
	if len(firsts) != 2 || firsts[0] != 9 || firsts[1] != 9 {
		t.Fatalf("payload first bytes %v", firsts)
	}
	if res.Stats[0].Stats.SuppressedSends != 1 {
		t.Fatalf("rank 0 suppressed %d sends (token), want 1", res.Stats[0].Stats.SuppressedSends)
	}
}

// TestFigure7BcastAcrossLine: a broadcast whose root is pre-line while the
// receivers are post-line. Each root-to-child stream is late, gets logged,
// and replays during recovery without the root re-executing.
func TestFigure7BcastAcrossLine(t *testing.T) {
	rec := newRecorder()
	cfg := cluster.Config{
		Ranks:    4,
		Failures: []cluster.FailureSpec{{Rank: 2, AtPragma: 2}},
		App: func(env cluster.Env) error {
			st := env.State()
			phase := st.Int("phase")
			got := st.Float64("got")
			if _, err := env.Restore(); err != nil {
				return err
			}
			w := env.World()
			buf := make([]byte, 8)
			if env.Rank() == 0 {
				if phase.Get() < 1 {
					mpi.PutFloat64s(buf, []float64{3.25})
					if err := w.Bcast(buf, 1, mpi.TypeFloat64, 0); err != nil {
						return err
					}
					got.Set(3.25)
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil { // pragma 1
						return err
					}
				}
			} else {
				if phase.Get() < 1 {
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil { // pragma 1
						return err
					}
				}
				if phase.Get() < 2 {
					if err := w.Bcast(buf, 1, mpi.TypeFloat64, 0); err != nil {
						return err
					}
					var v [1]float64
					mpi.GetFloat64s(v[:], buf)
					got.Set(v[0])
					phase.Set(2)
				}
				rec.add(fmt.Sprintf("got%d", env.Rank()), int64(got.Get()*100))
			}
			if err := cluster.LayerOf(env).Sync(); err != nil {
				return err
			}
			return env.Checkpoint() // pragma 2: rank 2 dies on attempt 0
		},
	}
	res := run(t, cfg)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for r := 1; r < 4; r++ {
		vals := rec.get(fmt.Sprintf("got%d", r))
		if len(vals) != 2 || vals[0] != 325 || vals[1] != 325 {
			t.Fatalf("rank %d broadcast values %v", r, vals)
		}
	}
}

// TestAllreduceResultLog: an Allreduce crossing a line must be logged by
// the post-line participants and replayed from the log during recovery
// (paper Section 4.3).
func TestAllreduceResultLog(t *testing.T) {
	rec := newRecorder()
	cfg := cluster.Config{
		Ranks:    4,
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 2}},
		App: func(env cluster.Env) error {
			st := env.State()
			phase := st.Int("phase")
			acc := st.Float64("acc")
			if _, err := env.Restore(); err != nil {
				return err
			}
			w := env.World()
			in := make([]byte, 8)
			out := make([]byte, 8)
			mpi.PutFloat64s(in, []float64{float64(env.Rank() + 1)})
			if env.Rank() == 3 {
				// Rank 3 calls the Allreduce pre-line; everyone else
				// post-line, so the call crosses the recovery line.
				if phase.Get() < 1 {
					if err := w.Allreduce(in, out, 1, mpi.TypeFloat64, mpi.OpSum); err != nil {
						return err
					}
					var v [1]float64
					mpi.GetFloat64s(v[:], out)
					acc.Set(v[0])
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil { // pragma 1
						return err
					}
				}
			} else {
				if phase.Get() < 1 {
					phase.Set(1)
					if err := env.CheckpointNow(); err != nil { // pragma 1
						return err
					}
				}
				if phase.Get() < 2 {
					if err := w.Allreduce(in, out, 1, mpi.TypeFloat64, mpi.OpSum); err != nil {
						return err
					}
					var v [1]float64
					mpi.GetFloat64s(v[:], out)
					acc.Set(v[0])
					phase.Set(2)
				}
			}
			rec.add(fmt.Sprintf("acc%d", env.Rank()), int64(acc.Get()))
			if err := cluster.LayerOf(env).Sync(); err != nil {
				return err
			}
			return env.Checkpoint() // pragma 2: rank 1 dies on attempt 0
		},
	}
	res := run(t, cfg)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for r := 0; r < 4; r++ {
		vals := rec.get(fmt.Sprintf("acc%d", r))
		want := int64(10) // 1+2+3+4
		for _, v := range vals {
			if v != want {
				t.Fatalf("rank %d allreduce values %v, want %d", r, vals, want)
			}
		}
	}
	replayed := uint64(0)
	logged := uint64(0)
	for _, rs := range res.Stats {
		replayed += rs.Stats.ResultsReplayed
		logged += rs.Stats.ResultsLogged
	}
	if replayed == 0 {
		t.Fatal("no allreduce results were replayed from the log")
	}
}

// TestRestartFromScratch: a failure before any checkpoint commits restarts
// the computation from the beginning.
func TestRestartFromScratch(t *testing.T) {
	rec := newRecorder()
	cfg := cluster.Config{
		Ranks:    2,
		Failures: []cluster.FailureSpec{{Rank: 0, AtPragma: 1}},
		App: func(env cluster.Env) error {
			restored, err := env.Restore()
			if err != nil {
				return err
			}
			rec.add("restored", int64(b2i(restored)))
			w := env.World()
			other := 1 - env.Rank()
			var in [1]byte
			if _, err := w.Sendrecv([]byte{byte(env.Rank())}, 1, mpi.TypeByte, other, 3,
				in[:], 1, mpi.TypeByte, other, 3); err != nil {
				return err
			}
			rec.add("xchg", int64(in[0]))
			return env.Checkpoint() // rank 0 dies here on attempt 0
		},
	}
	res := run(t, cfg)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for _, v := range rec.get("restored") {
		if v != 0 {
			t.Fatal("restore should have found no committed line")
		}
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestTwoFailures: recovery must survive a second failure after the first
// recovery, restarting again from the same (or a newer) line.
func TestTwoFailures(t *testing.T) {
	rec := newRecorder()
	cfg := cluster.Config{
		Ranks: 3,
		Failures: []cluster.FailureSpec{
			{Rank: 1, AtPragma: 2},
			{Rank: 2, AtPragma: 2},
		},
		App: func(env cluster.Env) error {
			st := env.State()
			it := st.Int("it")
			sum := st.Int("sum")
			if _, err := env.Restore(); err != nil {
				return err
			}
			w := env.World()
			for it.Get() < 4 {
				// Ring shift: send to the right, receive from the left.
				right := (env.Rank() + 1) % 3
				left := (env.Rank() + 2) % 3
				var in [1]byte
				if _, err := w.Sendrecv([]byte{byte(env.Rank() + it.Get())}, 1, mpi.TypeByte, right, 4,
					in[:], 1, mpi.TypeByte, left, 4); err != nil {
					return err
				}
				sum.Add(int(in[0]))
				it.Add(1)
				if err := env.CheckpointNow(); err != nil { // pragmas 1..4
					return err
				}
			}
			rec.add(fmt.Sprintf("sum%d", env.Rank()), int64(sum.Get()))
			return cluster.LayerOf(env).Sync()
		},
	}
	res := run(t, cfg)
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	// Failure-free expectation: sum over it of (left + it).
	for r := 0; r < 3; r++ {
		left := (r + 2) % 3
		want := int64(0)
		for it := 0; it < 4; it++ {
			want += int64(left + it)
		}
		vals := rec.get(fmt.Sprintf("sum%d", r))
		if len(vals) == 0 || vals[len(vals)-1] != want {
			t.Fatalf("rank %d sums %v, want final %d", r, vals, want)
		}
	}
}

// TestCommSplitAndTypeRestoredAcrossFailure: communicators and datatypes
// created before the line must be rebuilt on recovery from their recorded
// recipes (paper Sections 4.2 and 4.4).
func TestCommSplitAndTypeRestoredAcrossFailure(t *testing.T) {
	rec := newRecorder()
	cfg := cluster.Config{
		Ranks:    4,
		Failures: []cluster.FailureSpec{{Rank: 3, AtPragma: 2}},
		App: func(env cluster.Env) error {
			st := env.State()
			phase := st.Int("phase")
			commH := st.Int("commH")
			typeH := st.Int("typeH")
			if _, err := env.Restore(); err != nil {
				return err
			}
			layer := cluster.LayerOf(env)
			w := env.World().(*ckpt.WComm)
			if phase.Get() < 1 {
				// Mid-run creations, before the first line.
				sub, err := w.Split(env.Rank()%2, env.Rank())
				if err != nil {
					return err
				}
				commH.Set(sub.Handle())
				th, err := layer.TypeVector(2, 1, 2, ckpt.HandleFloat64)
				if err != nil {
					return err
				}
				typeH.Set(th)
				phase.Set(1)
				if err := env.CheckpointNow(); err != nil { // pragma 1
					return err
				}
			}
			if phase.Get() < 2 {
				// Post-line: use the handles (restored from recipes after a
				// failure, since the creation code is skipped on re-run).
				sub, err := layer.CommByHandle(commH.Get())
				if err != nil {
					return err
				}
				dt, err := layer.Type(typeH.Get())
				if err != nil {
					return err
				}
				buf := make([]byte, dt.Extent())
				if sub.Rank() == 0 {
					mpi.PutFloat64s(buf[:8], []float64{1})
					mpi.PutFloat64s(buf[16:24], []float64{2})
				}
				if err := sub.Bcast(buf, 1, dt, 0); err != nil {
					return err
				}
				var v [1]float64
				mpi.GetFloat64s(v[:], buf[16:24])
				rec.add(fmt.Sprintf("v%d", env.Rank()), int64(v[0]))
				phase.Set(2)
			}
			if err := layer.Sync(); err != nil {
				return err
			}
			return env.Checkpoint() // pragma 2: rank 3 dies on attempt 0
		},
	}
	res := run(t, cfg)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	for r := 0; r < 4; r++ {
		vals := rec.get(fmt.Sprintf("v%d", r))
		if len(vals) == 0 {
			t.Fatalf("rank %d has no values", r)
		}
		for _, v := range vals {
			if v != 2 {
				t.Fatalf("rank %d strided bcast values %v, want 2s", r, vals)
			}
		}
	}
}
