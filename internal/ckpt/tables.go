package ckpt

import (
	"fmt"

	"c3/internal/mpi"
	"c3/internal/wire"
)

// This file implements the handle tables the protocol layer keeps so that
// MPI library state can be reconstructed on recovery (paper Sections 4.2,
// 4.4 and 5): derived datatypes (with their construction hierarchy),
// reduction operations, and communicators. Each table stores the *recipe*
// used to create each handle; recovery replays recipes to rebuild the
// native MPI objects, then the application resumes holding the same integer
// handles it held before the failure.

// Type table entry kinds.
const (
	tkPrim uint8 = iota
	tkContiguous
	tkVector
	tkIndexed
	tkStruct
)

// Builtin datatype handles.
const (
	HandleByte = iota + 1
	HandleInt64
	HandleFloat64
	HandleComplex128
	firstUserTypeHandle
)

// TypeEntry is one row of the datatype handle table.
type TypeEntry struct {
	Handle   int
	Kind     uint8
	Ints     []int // kind-specific integer parameters
	Children []int // child handles (hierarchy)

	DT    *mpi.Datatype
	Alive bool // not yet freed by the application
	refs  int  // live types built from this one
}

// TypeTable is the datatype indirection table. "To stay independent of the
// underlying MPI implementation, we implement a separate indirection table"
// (Section 4.1); for datatypes the table also records the hierarchy so that
// "during a restore all intermediate datatypes can be correctly
// reconstructed" (Section 4.2).
type TypeTable struct {
	entries    map[int]*TypeEntry
	order      []int // creation order
	nextHandle int
	byPtr      map[*mpi.Datatype]int
}

// NewTypeTable returns a table with the builtin primitives registered.
func NewTypeTable() *TypeTable {
	t := &TypeTable{
		entries:    make(map[int]*TypeEntry),
		nextHandle: firstUserTypeHandle,
		byPtr:      make(map[*mpi.Datatype]int),
	}
	for h, dt := range map[int]*mpi.Datatype{
		HandleByte:       mpi.TypeByte,
		HandleInt64:      mpi.TypeInt64,
		HandleFloat64:    mpi.TypeFloat64,
		HandleComplex128: mpi.TypeComplex128,
	} {
		t.entries[h] = &TypeEntry{Handle: h, Kind: tkPrim, Ints: []int{h}, DT: dt, Alive: true}
		t.byPtr[dt] = h
	}
	return t
}

// Get returns the entry for a handle.
func (t *TypeTable) Get(handle int) (*TypeEntry, bool) {
	e, ok := t.entries[handle]
	return e, ok
}

// HandleFor returns the handle for a datatype created through this table
// (or a builtin).
func (t *TypeTable) HandleFor(dt *mpi.Datatype) (int, bool) {
	h, ok := t.byPtr[dt]
	return h, ok
}

// create installs an entry built from a recipe.
func (t *TypeTable) create(kind uint8, ints []int, children []int) (int, error) {
	dt, err := t.build(kind, ints, children)
	if err != nil {
		return 0, err
	}
	h := t.nextHandle
	t.nextHandle++
	e := &TypeEntry{Handle: h, Kind: kind, Ints: ints, Children: children, DT: dt, Alive: true}
	t.entries[h] = e
	t.order = append(t.order, h)
	t.byPtr[dt] = h
	for _, ch := range children {
		t.entries[ch].refs++
	}
	return h, nil
}

func (t *TypeTable) build(kind uint8, ints []int, children []int) (*mpi.Datatype, error) {
	childDT := make([]*mpi.Datatype, len(children))
	for i, ch := range children {
		e, ok := t.entries[ch]
		if !ok {
			return nil, fmt.Errorf("ckpt: datatype handle %d: unknown child %d", t.nextHandle, ch)
		}
		childDT[i] = e.DT
	}
	// Recipes may come off a deserialized checkpoint, so their shapes must
	// be validated before indexing — a corrupt row is an error, not a panic.
	malformed := func() error {
		return fmt.Errorf("ckpt: datatype handle %d: malformed kind-%d recipe (%d ints, %d children)",
			t.nextHandle, kind, len(ints), len(children))
	}
	switch kind {
	case tkContiguous:
		if len(ints) < 1 || len(childDT) < 1 {
			return nil, malformed()
		}
		return mpi.Contiguous(ints[0], childDT[0])
	case tkVector:
		if len(ints) < 3 || len(childDT) < 1 {
			return nil, malformed()
		}
		return mpi.Vector(ints[0], ints[1], ints[2], childDT[0])
	case tkIndexed:
		if len(ints) < 1 || len(childDT) < 1 {
			return nil, malformed()
		}
		// Compare against (len-1)/2 rather than 1+2*n: the latter overflows
		// for huge decoded n and would wave the corrupt recipe through.
		n := ints[0]
		if n < 0 || n > (len(ints)-1)/2 {
			return nil, malformed()
		}
		return mpi.Indexed(ints[1:1+n], ints[1+n:1+2*n], childDT[0])
	case tkStruct:
		if len(ints) < 1 {
			return nil, malformed()
		}
		n := ints[0]
		if n < 0 || n > (len(ints)-1)/2 || len(childDT) < n {
			return nil, malformed()
		}
		return mpi.Struct(ints[1:1+n], ints[1+n:1+2*n], childDT)
	default:
		return nil, fmt.Errorf("ckpt: unknown datatype kind %d", kind)
	}
}

// Contiguous creates a contiguous derived type.
func (t *TypeTable) Contiguous(count, base int) (int, error) {
	return t.create(tkContiguous, []int{count}, []int{base})
}

// Vector creates a vector derived type.
func (t *TypeTable) Vector(count, blockLen, stride, base int) (int, error) {
	return t.create(tkVector, []int{count, blockLen, stride}, []int{base})
}

// Indexed creates an indexed derived type.
func (t *TypeTable) Indexed(blockLens, displs []int, base int) (int, error) {
	ints := append([]int{len(blockLens)}, blockLens...)
	ints = append(ints, displs...)
	return t.create(tkIndexed, ints, []int{base})
}

// Struct creates a struct derived type.
func (t *TypeTable) Struct(blockLens, byteDispls []int, children []int) (int, error) {
	ints := append([]int{len(blockLens)}, blockLens...)
	ints = append(ints, byteDispls...)
	return t.create(tkStruct, ints, children)
}

// Free marks a handle freed by the application. The native type is released
// immediately, but the table row survives until no live type depends on it,
// so the hierarchy stays reconstructible ("table entries are not actually
// deleted until both the datatype represented by the entry and all types
// depending on it have been deleted", Section 4.2).
func (t *TypeTable) Free(handle int) error {
	e, ok := t.entries[handle]
	if !ok || handle < firstUserTypeHandle {
		return fmt.Errorf("ckpt: free of invalid datatype handle %d", handle)
	}
	if !e.Alive {
		return fmt.Errorf("ckpt: double free of datatype handle %d", handle)
	}
	e.Alive = false
	delete(t.byPtr, e.DT)
	e.DT = nil // the native type is dropped; only the recipe row remains
	t.sweep(handle)
	return nil
}

// sweep removes dead rows with no remaining dependents, cascading.
func (t *TypeTable) sweep(handle int) {
	e, ok := t.entries[handle]
	if !ok || e.Alive || e.refs > 0 {
		return
	}
	delete(t.entries, handle)
	for i, h := range t.order {
		if h == handle {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	for _, ch := range e.Children {
		if c, ok := t.entries[ch]; ok {
			c.refs--
			if ch >= firstUserTypeHandle {
				t.sweep(ch)
			}
		}
	}
}

// Serialize encodes the user-created rows (recipes only) in creation order.
func (t *TypeTable) Serialize() []byte {
	w := wire.NewWriter(64)
	w.U32(uint32(len(t.order)))
	for _, h := range t.order {
		e := t.entries[h]
		w.Int(e.Handle)
		w.U8(e.Kind)
		w.Bool(e.Alive)
		w.Ints(e.Ints)
		w.Ints(e.Children)
	}
	w.Int(t.nextHandle)
	return w.Bytes()
}

// Restore merges a serialized table into the current one. Rows whose handles
// already exist (because the application prologue re-created them before
// Restore) are verified against the recipes; missing rows are rebuilt. This
// reproduces C3's recovery behaviour where "this information is used to
// recreate all datatypes before the execution of the program resumes".
func (t *TypeTable) Restore(data []byte) error {
	r := wire.NewReader(data)
	n := r.Count(18) // minimum bytes per serialized row
	for i := 0; i < n; i++ {
		h := r.Int()
		kind := r.U8()
		alive := r.Bool()
		ints := r.Ints()
		children := r.Ints()
		if r.Err() != nil {
			return fmt.Errorf("ckpt: corrupt datatype table: %w", r.Err())
		}
		if e, ok := t.entries[h]; ok {
			if e.Kind != kind || !intsEqual(e.Ints, ints) || !intsEqual(e.Children, children) {
				return fmt.Errorf("ckpt: datatype handle %d recipe diverged between runs", h)
			}
			continue
		}
		dt, err := t.build(kind, ints, children)
		if err != nil {
			return err
		}
		e := &TypeEntry{Handle: h, Kind: kind, Ints: ints, Children: children, DT: dt, Alive: alive}
		t.entries[h] = e
		t.order = append(t.order, h)
		if alive {
			t.byPtr[dt] = h
		} else {
			e.DT = nil
		}
		for _, ch := range children {
			if c, ok := t.entries[ch]; ok {
				c.refs++
			}
		}
	}
	if nh := r.Int(); nh > t.nextHandle {
		t.nextHandle = nh
	}
	return r.Err()
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Reduction operation table ---

// OpTable maps handles to reduction operations. Operations are functions and
// cannot be serialized; the table records names, and recovery verifies that
// the application re-registered the same names in the same order (the Go
// analogue of C3 restoring its reduction-operation handle table).
type OpTable struct {
	byHandle   map[int]*mpi.Op
	names      []string
	nextHandle int
}

// Builtin op handles (1-based, order below).
var builtinOpNames = []string{"sum", "prod", "max", "min", "band", "bor", "bxor", "land", "lor"}

// NewOpTable returns a table with the builtin operations registered.
func NewOpTable() *OpTable {
	t := &OpTable{byHandle: make(map[int]*mpi.Op), nextHandle: 1}
	for _, name := range builtinOpNames {
		op, _ := mpi.LookupOp(name)
		t.register(op)
	}
	return t
}

func (t *OpTable) register(op *mpi.Op) int {
	h := t.nextHandle
	t.nextHandle++
	t.byHandle[h] = op
	t.names = append(t.names, op.Name())
	return h
}

// Register adds a user-defined operation and returns its handle.
func (t *OpTable) Register(op *mpi.Op) int { return t.register(op) }

// Get returns the operation for a handle.
func (t *OpTable) Get(handle int) (*mpi.Op, bool) {
	op, ok := t.byHandle[handle]
	return op, ok
}

// Serialize encodes the registered names.
func (t *OpTable) Serialize() []byte {
	w := wire.NewWriter(64)
	w.U32(uint32(len(t.names)))
	for _, n := range t.names {
		w.String(n)
	}
	return w.Bytes()
}

// Verify checks that the current registrations match a serialized table.
func (t *OpTable) Verify(data []byte) error {
	r := wire.NewReader(data)
	n := r.Count(4) // minimum bytes per serialized name
	if n > len(t.names) {
		return fmt.Errorf("ckpt: checkpoint has %d reduction ops, only %d re-registered", n, len(t.names))
	}
	for i := 0; i < n; i++ {
		name := r.String()
		if t.names[i] != name {
			return fmt.Errorf("ckpt: reduction op %d: registered %q, checkpoint has %q", i, t.names[i], name)
		}
	}
	return r.Err()
}

// --- Communicator table ---

// Communicator recipe kinds.
const (
	ckWorld uint8 = iota
	ckDup
	ckSplit
)

// CommEntry is one row of the communicator table.
type CommEntry struct {
	Handle int
	Kind   uint8
	Parent int
	Color  int
	Key    int

	Comm *mpi.Comm // nil if this rank is not a member (Split with color<0)
}

// HandleWorld is the world communicator's handle.
const HandleWorld = 1

// CommTable records communicator creations so they can be replayed on
// recovery ("any creation or deletion has to be recorded and stored as part
// of the checkpoint. On recovery, we read this information and replay the
// necessary MPI calls to recreate the respective structures", Section 4.4).
type CommTable struct {
	entries    map[int]*CommEntry
	order      []int
	nextHandle int
	byCtx      map[uint32]*CommEntry
}

// NewCommTable returns a table holding the world communicator.
func NewCommTable(world *mpi.Comm) *CommTable {
	t := &CommTable{
		entries:    make(map[int]*CommEntry),
		nextHandle: HandleWorld + 1,
		byCtx:      make(map[uint32]*CommEntry),
	}
	e := &CommEntry{Handle: HandleWorld, Kind: ckWorld, Comm: world}
	t.entries[HandleWorld] = e
	t.byCtx[world.Ctx()] = e
	return t
}

// Get returns the entry for a handle.
func (t *CommTable) Get(handle int) (*CommEntry, bool) {
	e, ok := t.entries[handle]
	return e, ok
}

// ByCtx returns the entry for a context id.
func (t *CommTable) ByCtx(ctx uint32) (*CommEntry, bool) {
	e, ok := t.byCtx[ctx]
	return e, ok
}

// Dup records and performs a communicator duplication. Collective.
func (t *CommTable) Dup(parent int) (int, error) {
	pe, ok := t.entries[parent]
	if !ok || pe.Comm == nil {
		return 0, fmt.Errorf("ckpt: dup of invalid communicator handle %d", parent)
	}
	nc, err := pe.Comm.Dup()
	if err != nil {
		return 0, err
	}
	h := t.nextHandle
	t.nextHandle++
	e := &CommEntry{Handle: h, Kind: ckDup, Parent: parent, Comm: nc}
	t.entries[h] = e
	t.order = append(t.order, h)
	t.byCtx[nc.Ctx()] = e
	return h, nil
}

// Split records and performs a communicator split. Collective.
func (t *CommTable) Split(parent, color, key int) (int, error) {
	pe, ok := t.entries[parent]
	if !ok || pe.Comm == nil {
		return 0, fmt.Errorf("ckpt: split of invalid communicator handle %d", parent)
	}
	nc, err := pe.Comm.Split(color, key)
	if err != nil {
		return 0, err
	}
	h := t.nextHandle
	t.nextHandle++
	e := &CommEntry{Handle: h, Kind: ckSplit, Parent: parent, Color: color, Key: key, Comm: nc}
	t.entries[h] = e
	t.order = append(t.order, h)
	if nc != nil {
		t.byCtx[nc.Ctx()] = e
	}
	return h, nil
}

// Serialize encodes the non-world rows in creation order.
func (t *CommTable) Serialize() []byte {
	w := wire.NewWriter(64)
	w.U32(uint32(len(t.order)))
	for _, h := range t.order {
		e := t.entries[h]
		w.Int(e.Handle)
		w.U8(e.Kind)
		w.Int(e.Parent)
		w.Int(e.Color)
		w.Int(e.Key)
	}
	w.Int(t.nextHandle)
	return w.Bytes()
}

// Restore merges a serialized table, verifying rows the application already
// re-created and replaying the rest. Replayed creations perform collective
// MPI calls, so every recovering rank must call Restore with the same data
// ordering — which holds because each rank saved its own identical creation
// history.
func (t *CommTable) Restore(data []byte) error {
	r := wire.NewReader(data)
	n := r.Count(33) // minimum bytes per serialized row
	for i := 0; i < n; i++ {
		h := r.Int()
		kind := r.U8()
		parent := r.Int()
		color := r.Int()
		key := r.Int()
		if r.Err() != nil {
			return fmt.Errorf("ckpt: corrupt communicator table: %w", r.Err())
		}
		if e, ok := t.entries[h]; ok {
			if e.Kind != kind || e.Parent != parent || e.Color != color || e.Key != key {
				return fmt.Errorf("ckpt: communicator handle %d recipe diverged between runs", h)
			}
			continue
		}
		var got int
		var err error
		switch kind {
		case ckDup:
			got, err = t.Dup(parent)
		case ckSplit:
			got, err = t.Split(parent, color, key)
		default:
			err = fmt.Errorf("ckpt: unknown communicator kind %d", kind)
		}
		if err != nil {
			return err
		}
		if got != h {
			return fmt.Errorf("ckpt: communicator replay produced handle %d, expected %d", got, h)
		}
	}
	if nh := r.Int(); nh > t.nextHandle {
		t.nextHandle = nh
	}
	return r.Err()
}
