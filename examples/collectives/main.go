// Collectives under checkpointing: broadcast, allreduce, scan and gather
// crossing recovery lines.
//
// Each phase takes a checkpoint on some ranks before the collective and on
// others after it, so the collective's streams straddle the recovery line
// exactly as in the paper's Figure 7. The injected failure then forces
// recovery: late broadcast streams replay from the log, and the Allreduce
// that crossed a line is replayed from the result log without communication
// ("it is sufficient to store the final result of the operation at each
// node and replay this from the log", Section 4.3).
//
// Note the application-level checkpointing discipline on display: every
// phase records its results in registered state and advances the phase
// counter BEFORE the pragma that may capture them, so that a restored run
// resumes exactly at the phase boundary. This is the structure C3's
// precompiler guarantees mechanically and a Go program expresses directly.
//
// Run: go run ./examples/collectives
package main

import (
	"fmt"
	"log"

	"c3"
)

const ranks = 4

func app(env c3.Env) error {
	st := env.State()
	phase := st.Int("phase")
	acc := st.Float64("acc")

	if _, err := env.Restore(); err != nil {
		return err
	}
	w := env.World()
	r := env.Rank()
	buf := make([]byte, 8)

	// Phase A: rank 0 broadcasts BEFORE its checkpoint; everyone else
	// checkpoints first and receives after — the broadcast streams are
	// late messages for them.
	if r == 0 {
		if phase.Get() == 0 {
			c3.PutFloat64s(buf, []float64{42.5})
			if err := w.Bcast(buf, 1, c3.TypeFloat64, 0); err != nil {
				return err
			}
			acc.Set(42.5)
			phase.Set(1)
			if err := env.CheckpointNow(); err != nil { // pragma 1
				return err
			}
		}
	} else {
		if phase.Get() == 0 {
			phase.Set(1)
			if err := env.CheckpointNow(); err != nil { // pragma 1
				return err
			}
		}
		if phase.Get() == 1 {
			if err := w.Bcast(buf, 1, c3.TypeFloat64, 0); err != nil {
				return err
			}
			var v [1]float64
			c3.GetFloat64s(v[:], buf)
			acc.Set(v[0])
			phase.Set(2)
		}
	}
	if r == 0 && phase.Get() == 1 {
		phase.Set(2)
	}
	// Fence: make sure the phase-A line has committed everywhere before
	// phase B's pragmas run (a pragma cannot start a new checkpoint while
	// the previous one is still completing — recovery lines never cross).
	if err := c3.LayerOf(env).Sync(); err != nil {
		return err
	}

	// Phase B: an Allreduce crossing the next line — rank 3 calls it
	// before checkpointing, everyone else after, so the post-line ranks
	// log the result and replay it during recovery.
	in := c3.Float64Bytes([]float64{acc.Get() + float64(r)})
	out := make([]byte, 8)
	if r == 3 {
		if phase.Get() == 2 {
			if err := w.Allreduce(in, out, 1, c3.TypeFloat64, c3.OpSum); err != nil {
				return err
			}
			acc.Set(c3.BytesFloat64s(out)[0])
			phase.Set(4)
			if err := env.CheckpointNow(); err != nil { // pragma 2
				return err
			}
		}
	} else {
		if phase.Get() == 2 {
			phase.Set(3)
			if err := env.CheckpointNow(); err != nil { // pragma 2
				return err
			}
		}
		if phase.Get() == 3 {
			if err := w.Allreduce(in, out, 1, c3.TypeFloat64, c3.OpSum); err != nil {
				return err
			}
			acc.Set(c3.BytesFloat64s(out)[0])
			phase.Set(4)
		}
	}

	// Phase C: prefix sums with Scan, collected at rank 0 with Gather.
	if phase.Get() == 4 {
		if err := w.Scan(c3.Float64Bytes([]float64{acc.Get()}), out, 1, c3.TypeFloat64, c3.OpSum); err != nil {
			return err
		}
		prefix := c3.BytesFloat64s(out)[0]
		all := make([]byte, 8*ranks)
		if err := w.Gather(c3.Float64Bytes([]float64{prefix}), 1, c3.TypeFloat64, all, 0); err != nil {
			return err
		}
		if r == 0 {
			vals := c3.BytesFloat64s(all)
			fmt.Printf("prefix sums at rank 0: %.1f %.1f %.1f %.1f\n",
				vals[0], vals[1], vals[2], vals[3])
		}
		phase.Set(5)
		// Commit fence so the line from phase B is durable everywhere
		// before the injected failure fires at the next pragma.
		if err := c3.LayerOf(env).Sync(); err != nil {
			return err
		}
		if err := env.Checkpoint(); err != nil { // pragma 3
			return err
		}
	}

	fmt.Printf("rank %d: allreduce total = %.1f\n", r, acc.Get())
	return nil
}

func main() {
	res, err := c3.Run(c3.Config{
		Ranks:    ranks,
		App:      app,
		Failures: []c3.FailureSpec{{Rank: 1, AtPragma: 3}},
	})
	if err != nil {
		log.Fatal(err)
	}
	var logged, replayed, lateLogged, lateReplayed uint64
	for _, rs := range res.Stats {
		logged += rs.Stats.ResultsLogged
		replayed += rs.Stats.ResultsReplayed
		lateLogged += rs.Stats.LateLogged
		lateReplayed += rs.Stats.ReplayedLate
	}
	fmt.Printf("\n%d attempts; allreduce results logged=%d replayed=%d; late msgs logged=%d replayed=%d\n",
		res.Attempts, logged, replayed, lateLogged, lateReplayed)
}
