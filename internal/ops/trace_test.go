package ops

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"c3/internal/trace"
)

// tracingBackend is a fakeBackend that can also dump its flight recorder,
// like a node configured with -trace-dir.
type tracingBackend struct {
	fakeBackend
	rec *trace.Recorder
	dir string
}

func (b *tracingBackend) TraceDump() (string, error) {
	return b.rec.WriteDump(b.dir, b.status.Rank)
}

func newTraceServer(t *testing.T, b Backend, opts ...Option) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", b, opts...)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// seedRecorder returns a private recorder with one finished commit span
// and a couple of message-edge events, isolated from the process-global
// recorder other tests write to.
func seedRecorder() *trace.Recorder {
	rec := trace.New(256)
	var now int64
	rec.SetClock(func() int64 { return now })
	sp := rec.Begin(2, trace.KindCommit, 0, 1)
	now += 2_000_000 // 2ms
	sp.End(4096)
	ctx := rec.Send(2, 3, 64)
	rec.Recv(3, 2, ctx, 64)
	return rec
}

func TestTraceSnapshotEndpoint(t *testing.T) {
	rec := seedRecorder()
	b := &fakeBackend{status: Status{Rank: 2}}
	s := newTraceServer(t, b, WithRecorder(rec))
	base := "http://" + s.Addr()

	code, body := get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace: %d %s", code, body)
	}
	var snap struct {
		Rank       int                        `json:"rank"`
		Clock      uint64                     `json:"clock"`
		Events     int                        `json:"events"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/trace not JSON: %v\n%s", err, body)
	}
	if snap.Rank != 2 || snap.Events != 4 || snap.Clock == 0 {
		t.Fatalf("/trace snapshot mangled: %+v", snap)
	}
	if _, ok := snap.Histograms["commit"]; !ok {
		t.Fatalf("/trace histograms missing the seeded commit family: %s", body)
	}
	if len(snap.Histograms) != 1 {
		t.Fatalf("/trace exposes %d histogram families, want only the non-empty one", len(snap.Histograms))
	}

	// ?events=1 adds the raw ring.
	code, body = get(t, base+"/trace?events=1")
	if code != http.StatusOK || !strings.Contains(body, `"ring"`) {
		t.Fatalf("/trace?events=1: %d, ring missing:\n%s", code, body)
	}
	var withRing struct {
		Ring []struct {
			Kind  string `json:"kind"`
			Phase string `json:"phase"`
		} `json:"ring"`
	}
	if err := json.Unmarshal([]byte(body), &withRing); err != nil {
		t.Fatalf("ring not JSON: %v", err)
	}
	if len(withRing.Ring) != 4 || withRing.Ring[0].Kind != "commit" || withRing.Ring[0].Phase != "begin" {
		t.Fatalf("ring contents mangled: %+v", withRing.Ring)
	}
}

func TestTraceDumpEndpoint(t *testing.T) {
	// A backend without the TraceDumper extension: 501.
	plain := newTraceServer(t, &fakeBackend{})
	if code, body := post(t, "http://"+plain.Addr()+"/trace/dump", ""); code != http.StatusNotImplemented {
		t.Fatalf("/trace/dump on plain backend = %d %q, want 501", code, body)
	}

	// A dumping backend writes a mergeable file and reports its path.
	rec := seedRecorder()
	b := &tracingBackend{fakeBackend: fakeBackend{status: Status{Rank: 2}}, rec: rec, dir: t.TempDir()}
	s := newTraceServer(t, b, WithRecorder(rec))
	base := "http://" + s.Addr()

	if code, _ := get(t, base+"/trace/dump"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /trace/dump = %d, want 405", code)
	}
	code, body := post(t, base+"/trace/dump", "")
	if code != http.StatusOK {
		t.Fatalf("/trace/dump: %d %s", code, body)
	}
	var out map[string]string
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("/trace/dump not JSON: %v", err)
	}
	if filepath.Base(out["dump"]) != "rank2.c3tr" {
		t.Fatalf("dump path %q, want .../rank2.c3tr", out["dump"])
	}
	d, err := trace.ReadDump(out["dump"])
	if err != nil || d.Rank != 2 || len(d.Events) != 4 {
		t.Fatalf("dumped file unreadable: %v (rank %d, %d events)", err, d.Rank, len(d.Events))
	}
}

func TestMetricsHistogramFamilies(t *testing.T) {
	rec := seedRecorder()
	b := &fakeBackend{metrics: Metrics{Rank: 2}}
	s := newTraceServer(t, b, WithRecorder(rec))
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}

	// Build identity.
	if !strings.Contains(body, "# TYPE c3_build_info gauge") ||
		!strings.Contains(body, `c3_build_info{rank="2",go="go`) {
		t.Fatalf("/metrics missing c3_build_info:\n%s", body)
	}

	// The seeded commit span (2ms) lands in the [1048576, 2097152)ns bucket,
	// whose upper bound in seconds is 0.002097152.
	for _, want := range []string{
		"# TYPE c3_commit_duration_seconds histogram",
		`c3_commit_duration_seconds_bucket{rank="2",le="0.002097152"} 1`,
		`c3_commit_duration_seconds_bucket{rank="2",le="+Inf"} 1`,
		`c3_commit_duration_seconds_sum{rank="2"} 0.002`,
		`c3_commit_duration_seconds_count{rank="2"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// Empty families still expose a stable schema: HELP/TYPE, +Inf, _sum,
	// _count — but no finite buckets.
	for _, want := range []string{
		"# TYPE c3_restore_duration_seconds histogram",
		`c3_restore_duration_seconds_bucket{rank="2",le="+Inf"} 0`,
		`c3_restore_duration_seconds_sum{rank="2"} 0`,
		`c3_restore_duration_seconds_count{rank="2"} 0`,
		"# TYPE c3_detection_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, `c3_restore_duration_seconds_bucket{rank="2",le="0`) {
		t.Fatal("empty family exposes finite buckets")
	}

	// The exposition-format sanity check from TestMetricsExposition must
	// keep holding with the histogram families present.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestDebugSurfaceGating(t *testing.T) {
	// Off by default: the profiling surface must not exist.
	plain := newTraceServer(t, &fakeBackend{})
	if code, _ := get(t, "http://"+plain.Addr()+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without WithDebug = %d, want 404", code)
	}
	if code, _ := post(t, "http://"+plain.Addr()+"/debug/runtime-trace/start", ""); code != http.StatusNotFound {
		t.Fatalf("runtime-trace start without WithDebug = %d, want 404", code)
	}

	dbg := newTraceServer(t, &fakeBackend{}, WithDebug())
	base := "http://" + dbg.Addr()
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ with WithDebug = %d", code)
	}

	// runtime/trace start/stop round trip, writing where we say.
	path := filepath.Join(t.TempDir(), "rt.out")
	code, body := post(t, base+"/debug/runtime-trace/start?path="+path, "")
	if code != http.StatusOK || !strings.Contains(body, "rt.out") {
		t.Fatalf("runtime-trace start: %d %s", code, body)
	}
	// Double start is refused while one is running.
	if code, _ := post(t, base+"/debug/runtime-trace/start", ""); code != http.StatusConflict {
		t.Fatalf("double runtime-trace start = %d, want 409", code)
	}
	if code, body = post(t, base+"/debug/runtime-trace/stop", ""); code != http.StatusOK {
		t.Fatalf("runtime-trace stop: %d %s", code, body)
	}
	// Stop with nothing running is a conflict, not a crash.
	if code, _ := post(t, base+"/debug/runtime-trace/stop", ""); code != http.StatusConflict {
		t.Fatalf("idle runtime-trace stop = %d, want 409", code)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("runtime trace file not written: %v", err)
	}
}
