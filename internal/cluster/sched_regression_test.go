package cluster_test

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/sched"
)

// TestRegressionStaleLateRegistrySchedule replays the minimized failing
// schedule the explorer distilled from seed 4 of the two-failures scenario
// (testdata/stale-latereg-seed4.sched, shrunk from 634 recorded decisions
// to 2 forced preemptions).
//
// Against the pre-fix protocol the schedule deterministically reproduced
// the recovery-line checksum divergence: after the first recovery, the
// Late-Message-Registry still held the replayed (consumed) entries of the
// restored line; the next line's commit serialized them alongside its real
// late messages, and the second recovery replayed message payloads that
// were already part of the restored state. The fix resets the registry at
// every period start (and Serialize skips consumed entries); this test
// pins both.
func TestRegressionStaleLateRegistrySchedule(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "stale-latereg-seed4.sched"))
	if err != nil {
		t.Fatal(err)
	}
	schedule, err := sched.UnmarshalSchedule(data)
	if err != nil {
		t.Fatal(err)
	}

	const ranks, iters = 5, 12
	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref), Seed: 1})

	var got sync.Map
	res := run(t, cluster.Config{
		Ranks:    ranks,
		App:      sched.StressApp(iters, &got),
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 4}},
		Policy:   ckpt.Policy{EveryNthPragma: 2},
		Replay:   schedule,
	})
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (both failures must fire under this schedule)", res.Attempts)
	}
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, _ := got.Load(r)
		if want != gotv {
			t.Errorf("rank %d checksum diverged under the minimized schedule: failure-free %v, recovered %v", r, want, gotv)
		}
	}
}

// TestRegressionMixedGenerationRecoveryLine pins the second defect the
// explorer found (two-failures-async, seed 4): a rank that fail-stops with
// recovery lines still in its async commit pipeline keeps an older
// generation's checkpoint at the same version number its surviving peers
// re-commit, and — without the truncate-on-restore fix — a later recovery
// assembles a "global" line from mixed generations, whose Was-Early
// registries suppress sends the peers actually need (a stall) or replay
// stale payloads (a divergence).
func TestRegressionMixedGenerationRecoveryLine(t *testing.T) {
	const ranks, iters = 5, 12
	var ref sync.Map
	run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref), Seed: 1})

	var got sync.Map
	run(t, cluster.Config{
		Ranks:    ranks,
		App:      sched.StressApp(iters, &got),
		Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 4}},
		Policy:   ckpt.Policy{EveryNthPragma: 2, AsyncCommit: true},
		Seed:     4,
	})
	for r := 0; r < ranks; r++ {
		want, _ := ref.Load(r)
		gotv, _ := got.Load(r)
		if want != gotv {
			t.Errorf("rank %d checksum diverged: failure-free %v, recovered %v", r, want, gotv)
		}
	}
}

// TestSeededRunsAreReproducible asserts the engine's core contract: the
// same seed yields byte-for-byte the same decision trace and the same
// results, and a recorded schedule replays to the identical execution.
func TestSeededRunsAreReproducible(t *testing.T) {
	const ranks, iters, seed = 5, 10, 12345
	cfg := func(sums *sync.Map) cluster.Config {
		return cluster.Config{
			Ranks:    ranks,
			App:      sched.StressApp(iters, sums),
			Failures: []cluster.FailureSpec{{Rank: 2, AtPragma: 4}},
			Policy:   ckpt.Policy{EveryNthPragma: 2},
			Seed:     seed,
		}
	}
	var s1, s2 sync.Map
	r1 := run(t, cfg(&s1))
	r2 := run(t, cfg(&s2))
	if r1.Schedule == nil || r2.Schedule == nil {
		t.Fatal("seeded runs must record their schedule")
	}
	if !reflect.DeepEqual(r1.Schedule, r2.Schedule) {
		t.Fatal("same seed produced different decision traces")
	}
	for r := 0; r < ranks; r++ {
		v1, _ := s1.Load(r)
		v2, _ := s2.Load(r)
		if v1 != v2 {
			t.Fatalf("rank %d: same seed produced different checksums (%v vs %v)", r, v1, v2)
		}
	}

	// Replaying the recording reproduces the run exactly.
	var s3 sync.Map
	c := cfg(&s3)
	c.Seed = 0
	c.Replay = r1.Schedule
	r3 := run(t, c)
	if !reflect.DeepEqual(r1.Schedule, r3.Schedule) {
		t.Fatal("trace replay produced a different decision trace")
	}
	for r := 0; r < ranks; r++ {
		v1, _ := s1.Load(r)
		v3, _ := s3.Load(r)
		if v1 != v3 {
			t.Fatalf("rank %d: replay produced a different checksum (%v vs %v)", r, v1, v3)
		}
	}
}

// TestSeededStressSweep runs a small deterministic seed battery over the
// stress scenario in both commit modes — the in-tree slice of the nightly
// c3sched sweep.
func TestSeededStressSweep(t *testing.T) {
	const ranks, iters = 5, 12
	for _, mode := range []struct {
		name  string
		async bool
	}{{"sync", false}, {"async", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			var ref sync.Map
			run(t, cluster.Config{Ranks: ranks, App: sched.StressApp(iters, &ref), Seed: 1})
			for seed := int64(1); seed <= 6; seed++ {
				var got sync.Map
				run(t, cluster.Config{
					Ranks:    ranks,
					App:      sched.StressApp(iters, &got),
					Failures: []cluster.FailureSpec{{Rank: 1, AtPragma: 5}, {Rank: 3, AtPragma: 4}},
					Policy:   ckpt.Policy{EveryNthPragma: 2, AsyncCommit: mode.async},
					Seed:     seed,
				})
				for r := 0; r < ranks; r++ {
					want, _ := ref.Load(r)
					gotv, _ := got.Load(r)
					if want != gotv {
						t.Errorf("seed %d rank %d: checksum diverged (failure-free %v, recovered %v)", seed, r, want, gotv)
					}
				}
			}
		})
	}
}
