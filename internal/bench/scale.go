package bench

// The scale table is the two-level topology's measurement artifact: it
// runs real-time failure detectors (no virtual clock — actual goroutines,
// actual heartbeats) over the in-memory interconnect at increasing world
// sizes, kills one rank, and reports the heartbeat cadence the topology
// can sustain, the steady-state message load, and the kill-to-agreement
// latency for the flat and the grouped topology side by side.
//
// The comparison hinges on scaleHeartbeat: a host can only deliver so many
// detector messages per second, so each configuration heartbeats as fast
// as its aggregate fan-out allows. The flat detector is all-pairs in both
// lease pings and post-kill suspicion gossip — its fan-out is n-1, so its
// heartbeat interval (and with it the detection latency) grows
// quadratically with the world. The grouped detector's fan-out is the
// group width, so its cadence — and detection latency — stays nearly flat
// out to a thousand ranks. Flat rows additionally stop at flatScaleCap:
// past that size the flat post-kill gossip storm is a burst no cadence
// choice absorbs.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"c3/internal/detect"
	"c3/internal/transport"
)

// flatScaleCap is the largest world the flat detector is swept to: the
// post-kill suspicion gossip is an O(n^2) burst (every live rank gossips
// every suspicion to every other rank), and past roughly a hundred ranks
// the burst outruns real-time consumers regardless of heartbeat cadence.
const flatScaleCap = 96

// Scale builds the flat-vs-grouped detector scaling table. The size sweep
// comes from opts.Ranks when set (sizes below 4 are raised to 4 — a
// smaller world cannot hold a quorum after the kill); the default sweep
// reaches the thousand-rank regime.
func Scale(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Scale: flat vs two-level failure detection (real-time detectors, one rank killed)",
		Columns: []string{"Ranks", "Topology", "Groups", "Heartbeat (ms)", "Steady msgs/s/rank", "Detect+agree (ms)", "Recovery msgs"},
	}
	sizes := opts.Ranks
	if len(sizes) == 0 {
		sizes = []int{32, 64, 96, 256, 1024}
	}
	for _, n := range sizes {
		if n < 4 {
			n = 4
		}
		if n <= flatScaleCap {
			fmt.Fprintf(os.Stderr, "scale: %d ranks, flat...\n", n)
			row, err := scaleRow(n, 0)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
		if g := scaleGroupSize(n); g > 0 {
			fmt.Fprintf(os.Stderr, "scale: %d ranks, grouped/%d...\n", n, g)
			row, err := scaleRow(n, g)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"Each configuration heartbeats as fast as its fan-out allows (fixed per-host message budget): flat fan-out is n-1 so its cadence and detection latency degrade quadratically; grouped fan-out is the group width so both stay nearly constant.",
		fmt.Sprintf("Flat rows stop at %d ranks: the flat post-kill suspicion gossip is an O(n^2) burst that outruns real-time consumers past ~100 ranks at any cadence.", flatScaleCap))
	return t, nil
}

// scaleGroupSize picks the group width for an n-rank grouped run: 16-wide
// groups up to 256 ranks, 32-wide beyond (the 1024-rank acceptance
// geometry). Worlds too small to hold two groups skip the grouped row.
func scaleGroupSize(n int) int {
	switch {
	case n >= 512:
		return 32
	case n >= 32:
		return 16
	default:
		return 0
	}
}

// scaleHeartbeat picks the fastest heartbeat interval a configuration can
// sustain on one host. The detector's send rate is ~0.3 messages per peer
// per heartbeat interval (lease pings amortized over the lease window), so
// aggregate load is ~0.3*n*fanout/hb; the budget of 25k msgs/s keeps a
// single CPU's steady state near half its delivery capacity, leaving
// headroom for the post-kill suspicion/agreement burst. The floor of 25ms
// is the cadence the self-healing deployment mode uses.
func scaleHeartbeat(n, groupSize int) time.Duration {
	fanout := n - 1
	if groupSize > 1 {
		fanout = groupSize
	}
	hb := time.Duration(0.3 * float64(n) * float64(fanout) / 25000 * float64(time.Second))
	// Past ~500 ranks the binding constraint stops being message
	// throughput: a 1024-rank world runs tens of thousands of goroutines
	// (n detectors x group-width send workers), and on a small host the
	// scheduling tail latency of a delayed tick eats into the phi and
	// lease windows — false suspicions, then a gossip storm. Doubling the
	// interval doubles every real-time window relative to that fixed tail.
	if n >= 512 {
		hb *= 2
	}
	if hb < 25*time.Millisecond {
		hb = 25 * time.Millisecond
	}
	return hb.Round(time.Millisecond)
}

// scaleRow runs one configuration, retrying on convergence failure: these
// are real-time worlds on whatever host runs the bench, and a rare
// starvation burst (GC pause, scheduler tail) can tip a world into a
// suspicion storm it never exits. A retry boots a completely fresh world;
// a configuration that fails every attempt is reported as the finding it
// is.
func scaleRow(n, groupSize int) ([]string, error) {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var row []string
		row, err = scaleRun(n, groupSize)
		if err == nil {
			return row, nil
		}
		fmt.Fprintf(os.Stderr, "scale: %v (retrying with a fresh world)\n", err)
	}
	return nil, err
}

// scaleRun boots one real-time detector world of n ranks (groupSize 0:
// flat), measures the steady-state message rate over a settle-then-sample
// window, kills one interior rank, and waits until every survivor has
// committed an epoch declaring it dead.
func scaleRun(n, groupSize int) ([]string, error) {
	// Sweep hygiene: the previous row's world (its message buffers and
	// arrival windows) is garbage now, but with gigabytes of it still on
	// the heap the GC's pacer schedules marking cycles big enough to
	// starve this row's real-time detectors on a small host — false
	// suspicions, then a gossip storm. Collect and return the memory
	// before booting the next world so every row starts from the same
	// heap floor a standalone run would see.
	runtime.GC()
	debug.FreeOSMemory()
	const phi = 8.0
	hb := scaleHeartbeat(n, groupSize)
	window := time.Second
	if window < 10*hb {
		window = 10 * hb
	}
	nw := transport.NewNetwork(n)
	dets := make([]*detect.Detector, n)
	abandoned := false
	defer func() {
		if abandoned {
			return // Close would block on the same wedged mutexes
		}
		for _, d := range dets {
			if d != nil {
				d.Close()
			}
		}
	}()
	for r := 0; r < n; r++ {
		d, err := detect.New(detect.Options{
			Self: r, Ranks: n, Net: nw,
			HeartbeatInterval: hb, PhiThreshold: phi,
			GroupSize: groupSize,
		})
		if err != nil {
			return nil, err
		}
		dets[r] = d
	}
	for _, d := range dets {
		d.Start()
	}

	time.Sleep(20 * hb) // settle: monitors need arrival history before phi means anything
	before := nw.Stats()
	time.Sleep(window)
	after := nw.Stats()
	steady := float64(after.MessagesSent-before.MessagesSent) / window.Seconds() / float64(n)

	// Kill an interior rank (n/2+1 is never a group's lowest member for
	// the widths scaleGroupSize picks, so the grouped run measures the
	// common case: a non-delegate death detected inside its group).
	victim := n/2 + 1
	if victim >= n {
		victim = n - 1
	}
	dets[victim].Close()
	dets[victim] = nil
	nw.Kill(victim)
	killAt := time.Now()
	preKill := nw.Stats()

	// Await every survivor at epoch >= 2, skipping ranks already seen
	// there: the sweep touches each detector's mutex, and on a small host
	// a hot polling loop would itself contend with the agreement traffic
	// it is timing. The deadline lives OUTSIDE the sweep goroutine — a
	// world that livelocks post-kill can wedge a detector's mutex, and a
	// sweep blocked inside Epoch() would never reach an inline deadline
	// check. On timeout the stuck world is abandoned (closing it would
	// block on the same mutexes); the bench errors out anyway.
	awaited := make(chan struct{})
	go func() {
		defer close(awaited)
		agreed := make([]bool, n)
		for remaining := n - 1; remaining > 0; {
			for r, d := range dets {
				if d == nil || agreed[r] {
					continue
				}
				if d.Epoch() >= 2 {
					agreed[r] = true
					remaining--
				}
			}
			if remaining > 0 {
				time.Sleep(hb / 4)
			}
		}
	}()
	wait := 60 * hb // successful agreements land well under this at every size
	if wait < 30*time.Second {
		wait = 30 * time.Second
	}
	select {
	case <-awaited:
	case <-time.After(wait):
		abandoned = true
		return nil, fmt.Errorf("bench: %d-rank world (group size %d) did not agree on the death within %v",
			n, groupSize, wait)
	}
	latency := time.Since(killAt)
	recovery := nw.Stats().MessagesSent - preKill.MessagesSent

	topo, groups := "flat", 1
	if groupSize > 1 {
		topo = fmt.Sprintf("grouped/%d", groupSize)
		groups = (n + groupSize - 1) / groupSize
	}
	return []string{
		fmt.Sprintf("%d", n),
		topo,
		fmt.Sprintf("%d", groups),
		fmt.Sprintf("%d", hb.Milliseconds()),
		fmt.Sprintf("%.1f", steady),
		fmt.Sprintf("%.1f", float64(latency.Microseconds())/1000),
		fmt.Sprintf("%d", recovery),
	}, nil
}
