package cluster_test

import (
	"fmt"
	"testing"

	"c3/internal/ckpt"
	"c3/internal/cluster"
	"c3/internal/mpi"
)

// TestFigure3ModeTransitions walks the protocol state machine of the
// paper's Figure 3 on a deterministic 3-rank schedule and observes every
// transition on rank 0:
//
//	Run --(checkpoint condition)--> NonDet-Log
//	NonDet-Log --(all nodes started checkpoint)--> RecvOnly-Log
//	RecvOnly-Log --(received all late messages)--> Run
func TestFigure3ModeTransitions(t *testing.T) {
	modes := make(chan ckpt.Mode, 16)
	cfg := cluster.Config{
		Ranks: 3,
		App: func(env cluster.Env) error {
			st := env.State()
			phase := st.Int("phase")
			if _, err := env.Restore(); err != nil {
				return err
			}
			w := env.World()
			layer := cluster.LayerOf(env)
			switch env.Rank() {
			case 0:
				modes <- layer.Mode() // Run
				phase.Set(1)
				if err := env.CheckpointNow(); err != nil {
					return err
				}
				modes <- layer.Mode() // NonDet-Log: rank 2 has not started
				// Tell rank 2 it may proceed (it sends its pre-line message
				// and then checkpoints).
				if err := w.SendBytes([]byte{1}, 2, 5); err != nil {
					return err
				}
				// Wait until both Checkpoint-Initiated messages arrive: the
				// mode must become RecvOnly-Log, not Run, because rank 2's
				// late message is still unreceived.
				for layer.Mode() == ckpt.ModeNonDetLog {
					if _, _, err := w.Iprobe(2, 6); err != nil {
						return err
					}
				}
				modes <- layer.Mode() // RecvOnly-Log
				var buf [1]byte
				if _, err := w.RecvBytes(buf[:], 2, 6); err != nil {
					return err
				}
				modes <- layer.Mode() // Run: late message in, committed
			case 1:
				phase.Set(1)
				if err := env.CheckpointNow(); err != nil {
					return err
				}
			case 2:
				// Wait for rank 0's go-ahead, send a message that will be
				// late for rank 0, then join the checkpoint.
				var buf [1]byte
				if _, err := w.RecvBytes(buf[:], 0, 5); err != nil {
					return err
				}
				if err := w.SendBytes([]byte{9}, 0, 6); err != nil {
					return err
				}
				phase.Set(1)
				if err := env.CheckpointNow(); err != nil {
					return err
				}
			}
			return layer.Sync()
		},
	}
	res := run(t, cfg)
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	close(modes)
	var got []ckpt.Mode
	for m := range modes {
		got = append(got, m)
	}
	want := []ckpt.Mode{ckpt.ModeRun, ckpt.ModeNonDetLog, ckpt.ModeRecvOnlyLog, ckpt.ModeRun}
	if len(got) != len(want) {
		t.Fatalf("observed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d: got %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestMessageFromStoppedLoggingSenderForcesTransition checks the subtle
// rule in Section 3.1: a process in NonDet-Log that receives a message from
// a process that has itself stopped logging must stop logging too —
// otherwise the saved global state could causally depend on an unlogged
// non-deterministic event.
func TestMessageFromStoppedLoggingSenderForcesTransition(t *testing.T) {
	modes := make(chan ckpt.Mode, 4)
	cfg := cluster.Config{
		Ranks: 3,
		App: func(env cluster.Env) error {
			st := env.State()
			phase := st.Int("phase")
			if _, err := env.Restore(); err != nil {
				return err
			}
			w := env.World()
			layer := cluster.LayerOf(env)
			switch env.Rank() {
			case 0:
				// Starts the checkpoint but is kept from learning that all
				// ranks started: no control processing happens until a
				// receive, and the first thing it receives is rank 1's
				// message — whose stopped-logging piggyback bit must force
				// the transition by itself.
				phase.Set(1)
				if err := env.CheckpointNow(); err != nil {
					return err
				}
				modes <- layer.Mode() // NonDet-Log
				var buf [1]byte
				if _, err := w.RecvBytes(buf[:], 1, 7); err != nil {
					return err
				}
				if layer.Mode() == ckpt.ModeNonDetLog {
					return fmt.Errorf("still logging after message from stopped-logging sender")
				}
			case 1:
				// Checkpoints, waits until its own line commits (it has
				// stopped logging), then messages rank 0.
				phase.Set(1)
				if err := env.CheckpointNow(); err != nil {
					return err
				}
				for layer.Mode() != ckpt.ModeRun {
					if _, _, err := w.Iprobe(mpi.AnySource, 99); err != nil {
						return err
					}
				}
				if err := w.SendBytes([]byte{1}, 0, 7); err != nil {
					return err
				}
			case 2:
				phase.Set(1)
				if err := env.CheckpointNow(); err != nil {
					return err
				}
			}
			return layer.Sync()
		},
	}
	run(t, cfg)
	m := <-modes
	if m != ckpt.ModeNonDetLog {
		t.Skipf("rank 0 left NonDet-Log before the message arrived (mode %v); scheduling made the scenario vacuous", m)
	}
}
